package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatal("zero value not zero")
	}
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("got %d, want 5", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestLevelTally(t *testing.T) {
	lt := NewLevelTally(4)
	lt.Inc(0)
	lt.Add(3, 10)
	lt.Add(3, 5)
	if lt.At(0) != 1 || lt.At(3) != 15 {
		t.Fatalf("unexpected tallies: %v", lt.Snapshot())
	}
	if lt.Total() != 16 {
		t.Fatalf("Total = %d, want 16", lt.Total())
	}
	lt.Sub(3, 15)
	if lt.At(3) != 0 {
		t.Fatal("Sub failed")
	}
	if lt.Levels() != 4 {
		t.Fatal("Levels wrong")
	}
	snap := lt.Snapshot()
	snap[0] = 999
	if lt.At(0) == 999 {
		t.Fatal("Snapshot is not a copy")
	}
	lt.Reset()
	if lt.Total() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestLevelTallyUnderflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewLevelTally(2).Sub(1, 1)
}

func TestSeries(t *testing.T) {
	var s Series
	if _, _, ok := s.Last(); ok {
		t.Fatal("empty series reported a last sample")
	}
	for i := 0; i < 10; i++ {
		s.Record(float64(i), float64(i*i))
	}
	if s.Len() != 10 {
		t.Fatalf("Len = %d", s.Len())
	}
	x, y, ok := s.Last()
	if !ok || x != 9 || y != 81 {
		t.Fatalf("Last = (%v, %v, %v)", x, y, ok)
	}
}

func TestSeriesFinalMean(t *testing.T) {
	var s Series
	for i := 0; i < 10; i++ {
		y := 0.0
		if i >= 5 {
			y = 100
		}
		s.Record(float64(i), y)
	}
	if got := s.FinalMean(0.5); got != 100 {
		t.Fatalf("FinalMean(0.5) = %v, want 100", got)
	}
	if got := s.FinalMean(1); got != 50 {
		t.Fatalf("FinalMean(1) = %v, want 50", got)
	}
	var empty Series
	if empty.FinalMean(0.5) != 0 {
		t.Fatal("empty FinalMean should be 0")
	}
}

func TestSeriesFinalMeanPanics(t *testing.T) {
	var s Series
	for _, frac := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("FinalMean(%v) did not panic", frac)
				}
			}()
			s.FinalMean(frac)
		}()
	}
}

func TestMinAvgMax(t *testing.T) {
	var m MinAvgMax
	if m.Count() != 0 || m.Mean() != 0 || m.Min() != 0 || m.Max() != 0 {
		t.Fatal("zero value not neutral")
	}
	for _, v := range []float64{5, 1, 9, 3} {
		m.Observe(v)
	}
	if m.Count() != 4 || m.Min() != 1 || m.Max() != 9 {
		t.Fatalf("got count=%d min=%v max=%v", m.Count(), m.Min(), m.Max())
	}
	if math.Abs(m.Mean()-4.5) > 1e-12 {
		t.Fatalf("Mean = %v, want 4.5", m.Mean())
	}
}

func TestMinAvgMaxNegative(t *testing.T) {
	var m MinAvgMax
	m.Observe(-3)
	m.Observe(-7)
	if m.Min() != -7 || m.Max() != -3 {
		t.Fatalf("min=%v max=%v", m.Min(), m.Max())
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{10, 100, 1000})
	for _, v := range []float64{1, 5, 10, 50, 99, 100, 500, 5000} {
		h.Observe(v)
	}
	// Buckets: <=10, <=100, <=1000, overflow (SearchFloat64s puts v==bound
	// in the bucket whose bound equals v).
	want := []uint64{3, 3, 1, 1}
	for i, w := range want {
		if got := h.Bucket(i); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if h.Count() != 8 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.NumBuckets() != 4 {
		t.Fatalf("NumBuckets = %d", h.NumBuckets())
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	for i := 1; i <= 10; i++ {
		h.Observe(float64(i))
	}
	if q := h.Quantile(0.5); q != 5 {
		t.Errorf("p50 = %v, want 5", q)
	}
	if q := h.Quantile(1); q != 10 {
		t.Errorf("p100 = %v, want 10", q)
	}
	var empty = NewHistogram([]float64{1})
	if empty.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
}

func TestHistogramInvalidBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogram([]float64{5, 5})
}

func TestSet(t *testing.T) {
	s := NewSet()
	s.Counter("read").Add(3)
	s.Counter("write").Add(2)
	s.Counter("read").Inc()
	if s.Value("read") != 4 || s.Value("write") != 2 {
		t.Fatalf("values wrong: %s", s)
	}
	if s.Value("absent") != 0 {
		t.Fatal("absent counter should read 0")
	}
	if s.Total() != 6 {
		t.Fatalf("Total = %d", s.Total())
	}
	names := s.Names()
	if len(names) != 2 || names[0] != "read" || names[1] != "write" {
		t.Fatalf("Names = %v; want creation order", names)
	}
	if got := s.String(); got != "read=4 write=2" {
		t.Fatalf("String = %q", got)
	}
}

// Property: histogram bucket counts always sum to the observation count.
func TestQuickHistogramConservation(t *testing.T) {
	f := func(values []float64) bool {
		h := NewHistogram([]float64{-100, 0, 100})
		for _, v := range values {
			if math.IsNaN(v) {
				continue
			}
			h.Observe(v)
		}
		var sum uint64
		for i := 0; i < h.NumBuckets(); i++ {
			sum += h.Bucket(i)
		}
		return sum == h.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: MinAvgMax invariant min <= mean <= max for any non-empty input.
func TestQuickMinAvgMaxInvariant(t *testing.T) {
	f := func(values []float64) bool {
		var m MinAvgMax
		n := 0
		for _, v := range values {
			// Restrict to magnitudes where the running sum cannot overflow;
			// simulator metrics are far below this bound.
			if math.IsNaN(v) || math.Abs(v) > 1e100 {
				continue
			}
			m.Observe(v)
			n++
		}
		if n == 0 {
			return true
		}
		return m.Min() <= m.Mean()+1e-9 && m.Mean() <= m.Max()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
