package stats

import (
	"sort"
	"sync"
	"time"
)

// LatencyRecorder collects request latencies and summarizes them as exact
// quantiles (p50/p95/p99). Unlike the rest of this package — which serves
// the single-threaded simulator core — the recorder is safe for concurrent
// use: the serving layer's load generators record from many worker
// goroutines into one instance.
//
// Samples are retained individually (8 bytes each), so quantiles are exact
// rather than bucket-bounded; a closed-loop load test of a few million
// operations costs tens of megabytes, which is acceptable for a bench tool.
type LatencyRecorder struct {
	mu      sync.Mutex
	samples []time.Duration
}

// Record adds one latency observation.
func (r *LatencyRecorder) Record(d time.Duration) {
	r.mu.Lock()
	r.samples = append(r.samples, d)
	r.mu.Unlock()
}

// Merge folds another recorder's samples into r. The other recorder is
// left unchanged.
func (r *LatencyRecorder) Merge(o *LatencyRecorder) {
	o.mu.Lock()
	samples := append([]time.Duration(nil), o.samples...)
	o.mu.Unlock()
	r.mu.Lock()
	r.samples = append(r.samples, samples...)
	r.mu.Unlock()
}

// Count returns the number of recorded observations.
func (r *LatencyRecorder) Count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.samples)
}

// LatencySummary is a point-in-time digest of a recorder.
type LatencySummary struct {
	Count              int
	Mean               time.Duration
	P50, P95, P99, Max time.Duration
}

// Summary computes the digest over everything recorded so far. Quantiles
// use the nearest-rank definition on the sorted samples, so P50 of a
// single observation is that observation.
func (r *LatencyRecorder) Summary() LatencySummary {
	r.mu.Lock()
	sorted := append([]time.Duration(nil), r.samples...)
	r.mu.Unlock()
	if len(sorted) == 0 {
		return LatencySummary{}
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	rank := func(q float64) time.Duration {
		i := int(q*float64(len(sorted))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		return sorted[i]
	}
	return LatencySummary{
		Count: len(sorted),
		Mean:  sum / time.Duration(len(sorted)),
		P50:   rank(0.50),
		P95:   rank(0.95),
		P99:   rank(0.99),
		Max:   sorted[len(sorted)-1],
	}
}
