package stats

import (
	"sort"
	"sync"
	"time"

	"repro/internal/rng"
)

// defaultLatencyLimit bounds retained samples when the caller does not set
// an explicit limit: 2^20 samples (8 MiB), far above any short bench run,
// so quantiles stay exact where they used to be, while an unbounded soak
// no longer grows the recorder without limit.
const defaultLatencyLimit = 1 << 20

// LatencyRecorder collects request latencies and summarizes them as
// quantiles (p50/p95/p99). Unlike the rest of this package — which serves
// the single-threaded simulator core — the recorder is safe for concurrent
// use: the serving layer's load generators record from many worker
// goroutines into one instance.
//
// Retention is bounded: up to Limit samples (default 2^20) are kept
// individually, so short runs get exact quantiles byte-identical to the
// previous unbounded recorder. Past the bound, reservoir sampling
// (Algorithm R) keeps a uniform sample of everything seen, so a soak test
// of hundreds of millions of operations holds memory constant while the
// quantiles remain unbiased estimates. Count, Mean, and Max always cover
// every observation exactly — only the quantile sample is bounded.
type LatencyRecorder struct {
	// Limit caps retained samples; 0 means defaultLatencyLimit. Set it
	// before the first Record — changing it later is undefined.
	Limit int

	mu      sync.Mutex
	samples []time.Duration
	seen    uint64        // total observations, including evicted ones
	sum     time.Duration // running sum over all observations
	max     time.Duration // running max over all observations
	src     *rng.Source   // reservoir randomness, lazily seeded
}

func (r *LatencyRecorder) limit() uint64 {
	if r.Limit > 0 {
		return uint64(r.Limit)
	}
	return defaultLatencyLimit
}

// observe folds one observation in under r.mu.
func (r *LatencyRecorder) observe(d time.Duration) {
	r.seen++
	r.sum += d
	if d > r.max {
		r.max = d
	}
	if uint64(len(r.samples)) < r.limit() {
		r.samples = append(r.samples, d)
		return
	}
	// Algorithm R: the new observation replaces a uniformly random
	// retained sample with probability limit/seen.
	if r.src == nil {
		r.src = rng.New(r.seen ^ 0x1a7e9c)
	}
	if j := r.src.Uint64n(r.seen); j < uint64(len(r.samples)) {
		r.samples[j] = d
	}
}

// Record adds one latency observation.
func (r *LatencyRecorder) Record(d time.Duration) {
	r.mu.Lock()
	r.observe(d)
	r.mu.Unlock()
}

// Merge folds another recorder's observations into r. The other recorder
// is left unchanged. Aggregates (count, mean, max) merge exactly; the
// quantile sample absorbs the other recorder's retained samples through
// the same bounded path as Record.
func (r *LatencyRecorder) Merge(o *LatencyRecorder) {
	o.mu.Lock()
	samples := append([]time.Duration(nil), o.samples...)
	evicted := o.seen - uint64(len(o.samples))
	extraSum := o.sum
	extraMax := o.max
	for _, d := range samples {
		extraSum -= d
	}
	o.mu.Unlock()

	r.mu.Lock()
	for _, d := range samples {
		r.observe(d)
	}
	// Samples the other recorder already evicted cannot be replayed;
	// account for them in the exact aggregates only.
	r.seen += evicted
	r.sum += extraSum
	if extraMax > r.max {
		r.max = extraMax
	}
	r.mu.Unlock()
}

// Count returns the number of recorded observations.
func (r *LatencyRecorder) Count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return int(r.seen)
}

// LatencySummary is a point-in-time digest of a recorder.
type LatencySummary struct {
	Count              int
	Mean               time.Duration
	P50, P95, P99, Max time.Duration
}

// Summary computes the digest over everything recorded so far. Quantiles
// use the nearest-rank definition on the sorted retained samples, so P50
// of a single observation is that observation; below the retention bound
// they are exact.
func (r *LatencyRecorder) Summary() LatencySummary {
	r.mu.Lock()
	sorted := append([]time.Duration(nil), r.samples...)
	seen := r.seen
	sum := r.sum
	max := r.max
	r.mu.Unlock()
	if seen == 0 {
		return LatencySummary{}
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := func(q float64) time.Duration {
		i := int(q*float64(len(sorted))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		return sorted[i]
	}
	return LatencySummary{
		Count: int(seen),
		Mean:  sum / time.Duration(seen),
		P50:   rank(0.50),
		P95:   rank(0.95),
		P99:   rank(0.99),
		Max:   max,
	}
}
