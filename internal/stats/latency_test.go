package stats

import (
	"sync"
	"testing"
	"time"
)

func TestLatencyRecorderQuantiles(t *testing.T) {
	var r LatencyRecorder
	if s := r.Summary(); s.Count != 0 || s.P99 != 0 {
		t.Fatalf("empty recorder summary not zero: %+v", s)
	}
	// 1..100 ms: nearest-rank quantiles are exact.
	for i := 1; i <= 100; i++ {
		r.Record(time.Duration(i) * time.Millisecond)
	}
	s := r.Summary()
	if s.Count != 100 {
		t.Fatalf("count %d", s.Count)
	}
	if s.P50 != 50*time.Millisecond {
		t.Errorf("p50 = %v, want 50ms", s.P50)
	}
	if s.P95 != 95*time.Millisecond {
		t.Errorf("p95 = %v, want 95ms", s.P95)
	}
	if s.P99 != 99*time.Millisecond {
		t.Errorf("p99 = %v, want 99ms", s.P99)
	}
	if s.Max != 100*time.Millisecond {
		t.Errorf("max = %v, want 100ms", s.Max)
	}
	if want := 50500 * time.Microsecond; s.Mean != want {
		t.Errorf("mean = %v, want %v", s.Mean, want)
	}
}

func TestLatencyRecorderSingleSample(t *testing.T) {
	var r LatencyRecorder
	r.Record(7 * time.Millisecond)
	s := r.Summary()
	if s.P50 != 7*time.Millisecond || s.P99 != 7*time.Millisecond || s.Max != 7*time.Millisecond {
		t.Fatalf("single-sample summary wrong: %+v", s)
	}
}

func TestLatencyRecorderMerge(t *testing.T) {
	var a, b LatencyRecorder
	a.Record(1 * time.Millisecond)
	b.Record(3 * time.Millisecond)
	a.Merge(&b)
	if a.Count() != 2 {
		t.Fatalf("merged count %d, want 2", a.Count())
	}
	if b.Count() != 1 {
		t.Fatalf("source count %d, want 1", b.Count())
	}
}

// TestLatencyRecorderConcurrent exercises the locking under -race: many
// goroutines record while another repeatedly summarizes.
func TestLatencyRecorderConcurrent(t *testing.T) {
	var r LatencyRecorder
	var wg sync.WaitGroup
	const workers, each = 16, 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				r.Record(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			r.Summary()
		}
	}()
	wg.Wait()
	<-done
	if got := r.Count(); got != workers*each {
		t.Fatalf("count %d, want %d", got, workers*each)
	}
}
