package stats

import (
	"sync"
	"testing"
	"time"
)

func TestLatencyRecorderQuantiles(t *testing.T) {
	var r LatencyRecorder
	if s := r.Summary(); s.Count != 0 || s.P99 != 0 {
		t.Fatalf("empty recorder summary not zero: %+v", s)
	}
	// 1..100 ms: nearest-rank quantiles are exact.
	for i := 1; i <= 100; i++ {
		r.Record(time.Duration(i) * time.Millisecond)
	}
	s := r.Summary()
	if s.Count != 100 {
		t.Fatalf("count %d", s.Count)
	}
	if s.P50 != 50*time.Millisecond {
		t.Errorf("p50 = %v, want 50ms", s.P50)
	}
	if s.P95 != 95*time.Millisecond {
		t.Errorf("p95 = %v, want 95ms", s.P95)
	}
	if s.P99 != 99*time.Millisecond {
		t.Errorf("p99 = %v, want 99ms", s.P99)
	}
	if s.Max != 100*time.Millisecond {
		t.Errorf("max = %v, want 100ms", s.Max)
	}
	if want := 50500 * time.Microsecond; s.Mean != want {
		t.Errorf("mean = %v, want %v", s.Mean, want)
	}
}

func TestLatencyRecorderSingleSample(t *testing.T) {
	var r LatencyRecorder
	r.Record(7 * time.Millisecond)
	s := r.Summary()
	if s.P50 != 7*time.Millisecond || s.P99 != 7*time.Millisecond || s.Max != 7*time.Millisecond {
		t.Fatalf("single-sample summary wrong: %+v", s)
	}
}

func TestLatencyRecorderMerge(t *testing.T) {
	var a, b LatencyRecorder
	a.Record(1 * time.Millisecond)
	b.Record(3 * time.Millisecond)
	a.Merge(&b)
	if a.Count() != 2 {
		t.Fatalf("merged count %d, want 2", a.Count())
	}
	if b.Count() != 1 {
		t.Fatalf("source count %d, want 1", b.Count())
	}
}

// TestLatencyRecorderBounded checks the retention bound: aggregates
// (count, mean, max) stay exact past the bound while the quantile sample
// holds at Limit entries, uniformly drawn from everything seen.
func TestLatencyRecorderBounded(t *testing.T) {
	r := LatencyRecorder{Limit: 64}
	const n = 10000
	for i := 1; i <= n; i++ {
		r.Record(time.Duration(i) * time.Microsecond)
	}
	if got := r.Count(); got != n {
		t.Fatalf("count %d, want %d", got, n)
	}
	if got := len(r.samples); got != 64 {
		t.Fatalf("retained %d samples, want limit 64", got)
	}
	s := r.Summary()
	if want := time.Duration(n*(n+1)/2) * time.Microsecond / n; s.Mean != want {
		t.Errorf("mean = %v, want exact %v", s.Mean, want)
	}
	if want := n * time.Microsecond; s.Max != want {
		t.Errorf("max = %v, want exact %v", s.Max, want)
	}
	// The reservoir is a uniform sample of 1..n µs: p50 must land well
	// inside the middle half (a fair coin landing 64 heads in a row is
	// beyond this seeded deterministic stream).
	if s.P50 < n/4*time.Microsecond || s.P50 > 3*n/4*time.Microsecond {
		t.Errorf("reservoir p50 = %v implausible for uniform 1..%dµs", s.P50, n)
	}
}

// TestLatencyRecorderExactBelowBound pins the backward-compatibility
// contract: a run under the default bound produces the same summary the
// old unbounded recorder did (nearest-rank quantiles over every sample).
func TestLatencyRecorderExactBelowBound(t *testing.T) {
	var r LatencyRecorder
	for i := 1; i <= 1000; i++ {
		r.Record(time.Duration(i) * time.Microsecond)
	}
	s := r.Summary()
	if s.P50 != 500*time.Microsecond || s.P95 != 950*time.Microsecond || s.P99 != 990*time.Microsecond {
		t.Fatalf("quantiles not exact below bound: %+v", s)
	}
	if want := 500500 * time.Nanosecond; s.Mean != want {
		t.Fatalf("mean = %v, want %v", s.Mean, want)
	}
}

// TestLatencyRecorderMergeBounded checks that merging a recorder that
// already evicted samples keeps the exact aggregates exact.
func TestLatencyRecorderMergeBounded(t *testing.T) {
	a := LatencyRecorder{Limit: 8}
	b := LatencyRecorder{Limit: 8}
	for i := 1; i <= 100; i++ {
		b.Record(time.Duration(i) * time.Microsecond)
	}
	a.Record(1000 * time.Microsecond)
	a.Merge(&b)
	if got := a.Count(); got != 101 {
		t.Fatalf("merged count %d, want 101", got)
	}
	s := a.Summary()
	if want := (5050 + 1000) * time.Microsecond / 101; s.Mean != want {
		t.Fatalf("merged mean = %v, want %v", s.Mean, want)
	}
	if s.Max != 1000*time.Microsecond {
		t.Fatalf("merged max = %v, want 1000µs", s.Max)
	}
}

// TestLatencyRecorderConcurrent exercises the locking under -race: many
// goroutines record while another repeatedly summarizes.
func TestLatencyRecorderConcurrent(t *testing.T) {
	var r LatencyRecorder
	var wg sync.WaitGroup
	const workers, each = 16, 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				r.Record(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			r.Summary()
		}
	}()
	wg.Wait()
	<-done
	if got := r.Count(); got != workers*each {
		t.Fatalf("count %d, want %d", got, workers*each)
	}
}
