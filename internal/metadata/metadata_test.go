package metadata

import "testing"

// typicalRing is the classic Ring ORAM setting from §III-B of the paper:
// Z=12, Z'=5, S=7, 24 levels.
func typicalRing() Params {
	return Params{Z: 12, ZPrime: 5, S: 7, Levels: 24, NBlocks: 1 << 24}
}

// cbSetting is the paper's Baseline: bucket compaction with Z=8, S=3.
func cbSetting() Params {
	return Params{Z: 8, ZPrime: 5, S: 3, Levels: 24, NBlocks: 1 << 24, R: 6}
}

func TestValidate(t *testing.T) {
	bad := []Params{
		{Z: 0, ZPrime: 1, Levels: 4, NBlocks: 10},
		{Z: 4, ZPrime: 5, Levels: 4, NBlocks: 10}, // Z' > Z
		{Z: 4, ZPrime: 2, Levels: 0, NBlocks: 10},
		{Z: 4, ZPrime: 2, Levels: 4, NBlocks: 0},
		{Z: 4, ZPrime: 2, Levels: 4, NBlocks: 10, R: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected error for %+v", i, p)
		}
	}
	if err := typicalRing().Validate(); err != nil {
		t.Errorf("typical setting rejected: %v", err)
	}
}

func TestLog2Ceil(t *testing.T) {
	cases := []struct {
		n    int64
		want int
	}{{1, 1}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {1 << 24, 24}, {(1 << 24) - 1, 24}}
	for _, c := range cases {
		if got := log2Ceil(c.n); got != c.want {
			t.Errorf("log2Ceil(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestFieldsRingOnly(t *testing.T) {
	p := typicalRing()
	fields, err := Fields(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(fields) != 5 {
		t.Fatalf("Ring-only layout has %d fields, want 5 (Table I)", len(fields))
	}
	byName := map[string]Field{}
	for _, f := range fields {
		if f.ABOnly {
			t.Errorf("field %s marked ABOnly with R=0", f.Name)
		}
		byName[f.Name] = f
	}
	// Table I formulas: count=log(S)=3, addr=Z'*log(N)=5*24, label=Z'*(L+1)=5*25,
	// ptr=Z'*log(Z)=5*4, valid=Z=12.
	want := map[string]int{"count": 3, "addr": 120, "label": 125, "ptr": 20, "valid": 12}
	for name, bits := range want {
		if byName[name].Bits != bits {
			t.Errorf("%s = %d bits, want %d", name, byName[name].Bits, bits)
		}
	}
}

func TestFieldsABAdditions(t *testing.T) {
	p := cbSetting()
	fields, err := Fields(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(fields) != 10 {
		t.Fatalf("AB layout has %d fields, want 10 (Table I)", len(fields))
	}
	byName := map[string]Field{}
	for _, f := range fields {
		byName[f.Name] = f
	}
	// R=6, NBucket=2^24-1 -> 24 bits, Z=8 -> 3 bits, S=3 -> 2 bits.
	want := map[string]int{
		"remote":     6,
		"remoteAddr": 6 * 24,
		"remoteInd":  6 * 3,
		"dynamicS":   2,
		"status":     2 * 8,
	}
	for name, bits := range want {
		f, ok := byName[name]
		if !ok || !f.ABOnly {
			t.Errorf("%s missing or not ABOnly", name)
			continue
		}
		if f.Bits != bits {
			t.Errorf("%s = %d bits, want %d", name, f.Bits, bits)
		}
	}
}

func TestComputeMatchesPaperBudget(t *testing.T) {
	// §VIII-H: Ring metadata ~33 B, AB additions < 31 B, and the combined
	// metadata must fit one 64 B block with R=6.
	s, err := Compute(cbSetting())
	if err != nil {
		t.Fatal(err)
	}
	if s.RingBytes() < 30 || s.RingBytes() > 36 {
		t.Errorf("Ring metadata %d B, paper reports ~33 B", s.RingBytes())
	}
	if s.ABBytes() > 28 {
		t.Errorf("AB additions %d B exceed the paper's 28 B budget", s.ABBytes())
	}
	if !s.FitsInBlock(64) {
		t.Errorf("total metadata %d B does not fit a 64 B block", s.TotalBytes())
	}
}

func TestComputeError(t *testing.T) {
	if _, err := Compute(Params{}); err == nil {
		t.Fatal("expected error")
	}
	if _, err := Fields(Params{}); err == nil {
		t.Fatal("expected error")
	}
}

func TestSizesArithmetic(t *testing.T) {
	s := Sizes{RingBits: 9, ABBits: 7}
	if s.TotalBits() != 16 || s.RingBytes() != 2 || s.ABBytes() != 1 || s.TotalBytes() != 2 {
		t.Fatalf("arithmetic wrong: %+v", s)
	}
	if !s.FitsInBlock(2) || s.FitsInBlock(1) {
		t.Fatal("FitsInBlock wrong")
	}
}

func TestDeadQOnChipBudget(t *testing.T) {
	// §VIII-H: 6 levels x 1000 entries -> ~21 KB on-chip.
	p := cbSetting()
	entryBits := DeadQEntryBits(p)
	// slotAddr log(2^24-1)=24 + slotInd log(8)=3.
	if entryBits != 27 {
		t.Errorf("DeadQ entry = %d bits, want 27", entryBits)
	}
	total := DeadQOnChipBytes(p, 6, 1000)
	if total < 18<<10 || total > 24<<10 {
		t.Errorf("DeadQ on-chip = %d B, paper reports ~21 KB", total)
	}
}

func TestNBuckets(t *testing.T) {
	if got := (Params{Levels: 4}).NBuckets(); got != 15 {
		t.Fatalf("NBuckets = %d", got)
	}
}
