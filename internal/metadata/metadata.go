// Package metadata models the per-bucket metadata layout of Ring ORAM and
// AB-ORAM at the bit level, reproducing Table I of the paper and the
// storage-overhead analysis of §VIII-H (the 21 KB on-chip DeadQ budget and
// the requirement that AB-ORAM's additions keep bucket metadata within one
// 64-byte memory block).
package metadata

import (
	"fmt"
	"math/bits"
)

// Params are the ORAM parameters the field widths depend on.
type Params struct {
	Z       int   // physical slots per bucket
	ZPrime  int   // slots eligible for real blocks (Z')
	S       int   // reserved dummy slots
	Levels  int   // tree levels L
	NBlocks int64 // number of protected real data blocks (N_Block)
	R       int   // max remotely allocated slots per bucket (AB-ORAM only)
}

// Validate reports parameter errors.
func (p Params) Validate() error {
	if p.Z <= 0 || p.ZPrime <= 0 || p.ZPrime > p.Z || p.S < 0 {
		return fmt.Errorf("metadata: inconsistent Z=%d Z'=%d S=%d", p.Z, p.ZPrime, p.S)
	}
	if p.Levels <= 0 || p.NBlocks <= 0 {
		return fmt.Errorf("metadata: non-positive levels/blocks")
	}
	if p.R < 0 {
		return fmt.Errorf("metadata: negative R")
	}
	return nil
}

// NBuckets returns the bucket count of the tree, 2^L - 1.
func (p Params) NBuckets() int64 { return (1 << p.Levels) - 1 }

// Field is one metadata field's contribution to a bucket's metadata block.
type Field struct {
	Name     string
	Category string // "block" or "slot", Table I's two groups
	Bits     int    // total bits for this field in one bucket
	ABOnly   bool   // present only in AB-ORAM
	Function string // Table I's description
}

// log2Ceil returns ceil(log2(n)) for n >= 1, with log2Ceil(1) == 1 so a
// field indexing a single element still occupies one bit (matching the
// hardware convention the paper's table uses for log()).
func log2Ceil(n int64) int {
	if n <= 1 {
		return 1
	}
	return bits.Len64(uint64(n - 1))
}

// Fields returns the Table I layout for the parameters. Ring ORAM fields
// come first, AB-ORAM additions last, in the paper's order.
func Fields(p Params) ([]Field, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	sBits := 1
	if p.S > 1 {
		sBits = log2Ceil(int64(p.S))
	}
	f := []Field{
		{Name: "count", Category: "block", Bits: sBits,
			Function: "times the bucket has been touched since the last refresh"},
		{Name: "addr", Category: "block", Bits: p.ZPrime * log2Ceil(p.NBlocks),
			Function: "address of each real block"},
		{Name: "label", Category: "block", Bits: p.ZPrime * (p.Levels + 1),
			Function: "path ID of each real block"},
		{Name: "ptr", Category: "block", Bits: p.ZPrime * log2Ceil(int64(p.Z)),
			Function: "offset in the bucket of each real block"},
		{Name: "valid", Category: "slot", Bits: p.Z,
			Function: "whether the corresponding block is valid"},
	}
	if p.R > 0 {
		f = append(f,
			Field{Name: "remote", Category: "block", Bits: p.R, ABOnly: true,
				Function: "whether the block is remotely allocated"},
			Field{Name: "remoteAddr", Category: "block", Bits: p.R * log2Ceil(p.NBuckets()), ABOnly: true,
				Function: "bucket hosting the remotely allocated block"},
			Field{Name: "remoteInd", Category: "block", Bits: p.R * log2Ceil(int64(p.Z)), ABOnly: true,
				Function: "slot offset of the remotely allocated block"},
			Field{Name: "dynamicS", Category: "block", Bits: sBits, ABOnly: true,
				Function: "current S value of the bucket"},
			Field{Name: "status", Category: "slot", Bits: 2 * p.Z, ABOnly: true,
				Function: "slot status (REFRESHED, ALLOCATED, DEAD)"},
		)
	}
	return f, nil
}

// Sizes summarizes a layout.
type Sizes struct {
	RingBits int // baseline Ring ORAM fields
	ABBits   int // AB-ORAM additions only
}

// TotalBits returns Ring + AB bits.
func (s Sizes) TotalBits() int { return s.RingBits + s.ABBits }

// RingBytes returns the Ring ORAM metadata size rounded up to whole bytes.
func (s Sizes) RingBytes() int { return (s.RingBits + 7) / 8 }

// ABBytes returns the AB-ORAM addition rounded up to whole bytes.
func (s Sizes) ABBytes() int { return (s.ABBits + 7) / 8 }

// TotalBytes returns the full AB-ORAM bucket metadata size in bytes.
func (s Sizes) TotalBytes() int { return (s.TotalBits() + 7) / 8 }

// Compute sums the field widths for the parameters.
func Compute(p Params) (Sizes, error) {
	fields, err := Fields(p)
	if err != nil {
		return Sizes{}, err
	}
	var s Sizes
	for _, f := range fields {
		if f.ABOnly {
			s.ABBits += f.Bits
		} else {
			s.RingBits += f.Bits
		}
	}
	return s, nil
}

// FitsInBlock reports whether the total bucket metadata fits one memory
// block of the given size — the §VIII-H constraint that keeps the metadata
// access phase at one read per bucket.
func (s Sizes) FitsInBlock(blockBytes int) bool {
	return s.TotalBytes() <= blockBytes
}

// DeadQEntryBits returns the size of one DeadQ entry: {slotAddr, slotInd}
// identifying a dead physical slot (§V-B2).
func DeadQEntryBits(p Params) int {
	return log2Ceil(p.NBuckets()) + log2Ceil(int64(p.Z))
}

// DeadQOnChipBytes returns the total on-chip storage of the DeadQ queues:
// one queue per tracked level, entries each, matching the paper's 21 KB
// estimate for 6 levels x 1000 entries.
func DeadQOnChipBytes(p Params, trackedLevels, entriesPerQueue int) int {
	bits := DeadQEntryBits(p) * trackedLevels * entriesPerQueue
	return (bits + 7) / 8
}
