package dram

import (
	"fmt"
)

// bank tracks one DRAM bank's row-buffer and timing state.
type bank struct {
	openRow       int64  // -1 when no row is open
	readyAt       uint64 // earliest next column/activate command
	prechargeOKAt uint64 // earliest legal precharge (tRAS / tWR / tRTP)
}

// pendingWrite is a buffered write in a channel's write queue.
type pendingWrite struct {
	addr    uint64
	arrival uint64
}

// channel is one independent memory channel.
type channel struct {
	banks            []bank
	busFreeAt        uint64 // cycle at which the data bus is next free
	lastWriteDataEnd uint64 // for write->read turnaround (tWTR)
	nextRefreshAt    uint64 // next refresh command deadline (tREFI cadence)
	writeQ           []pendingWrite
}

// Stats aggregates controller-level measurements used by the bandwidth and
// performance figures.
type Stats struct {
	Reads, Writes      uint64
	RowHits, RowMisses uint64 // misses = row closed
	RowConflicts       uint64 // different row open
	WriteQueueForwards uint64 // reads serviced from the write queue
	ForcedWriteDrains  uint64
	Refreshes          uint64
	BusBusyCycles      uint64
	TotalReadLatency   uint64 // sum of (done - arrival) over reads
	BytesTransferred   uint64
}

// Controller is the multi-channel memory controller. It is not safe for
// concurrent use; the simulator is single-threaded by design.
type Controller struct {
	cfg Config
	ch  []channel
	st  Stats
}

// NewController builds a controller for the configuration.
func NewController(cfg Config) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Controller{cfg: cfg, ch: make([]channel, cfg.Channels)}
	for i := range c.ch {
		banks := make([]bank, cfg.Ranks*cfg.Banks)
		for j := range banks {
			banks[j].openRow = -1
		}
		c.ch[i].banks = banks
	}
	return c, nil
}

// MustNewController is NewController that panics on error.
func MustNewController(cfg Config) *Controller {
	c, err := NewController(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the controller configuration.
func (c *Controller) Config() Config { return c.cfg }

// Stats returns a copy of the accumulated statistics.
func (c *Controller) Stats() Stats { return c.st }

// ResetStats zeroes the statistics without disturbing timing state, so a
// warm-up phase can be excluded from measurement exactly as the paper does.
func (c *Controller) ResetStats() { c.st = Stats{} }

// Batch services one ORAM operation's memory traffic. All requests become
// eligible at cycle start. Reads are scheduled FR-FCFS per channel and the
// returned cycle is when the last read's data arrives (the operation's
// critical path). Writes are posted into per-channel write queues and
// drained either when a queue exceeds its capacity (blocking that channel's
// reads, as in USIMM) or later via Drain.
//
// If there are no reads, the returned cycle is start.
func (c *Controller) Batch(start uint64, reads, writes []uint64) uint64 {
	// Post writes first: an operation's writes are logically produced by
	// the on-chip controller and buffered; they only throttle this batch if
	// a queue overflows.
	for _, addr := range writes {
		loc := c.cfg.Decode(addr)
		ch := &c.ch[loc.Channel]
		ch.writeQ = append(ch.writeQ, pendingWrite{addr: addr, arrival: start})
		if len(ch.writeQ) >= c.cfg.WriteQueueCap {
			c.st.ForcedWriteDrains++
			c.drainChannel(ch, c.cfg.WriteDrainLo, start)
		}
	}
	if len(reads) == 0 {
		return start
	}

	// Partition reads by channel, preserving arrival order within each.
	perCh := make([][]uint64, c.cfg.Channels)
	for _, addr := range reads {
		chIdx := c.cfg.Decode(addr).Channel
		perCh[chIdx] = append(perCh[chIdx], addr)
	}

	done := start
	for chIdx, list := range perCh {
		if len(list) == 0 {
			continue
		}
		if d := c.serviceReads(&c.ch[chIdx], list, start); d > done {
			done = d
		}
	}
	return done
}

// serviceReads schedules a channel's share of a batch with FR-FCFS:
// repeatedly issue the oldest request that hits an open row, or the oldest
// request overall if none hits. Returns the completion cycle of the last
// read.
func (c *Controller) serviceReads(ch *channel, addrs []uint64, start uint64) uint64 {
	type rd struct {
		addr uint64
		loc  Location
		done bool
	}
	reads := make([]rd, len(addrs))
	for i, a := range addrs {
		reads[i] = rd{addr: a, loc: c.cfg.Decode(a)}
	}
	var last uint64 = start
	for remaining := len(reads); remaining > 0; remaining-- {
		pick := -1
		for i := range reads {
			if reads[i].done {
				continue
			}
			b := &ch.banks[reads[i].loc.Bank]
			if b.openRow == int64(reads[i].loc.Row) {
				pick = i
				break
			}
			if pick == -1 {
				pick = i
			}
		}
		r := &reads[pick]
		r.done = true

		// Write-queue forwarding: newest matching buffered write wins.
		if c.forwardFromWriteQueue(ch, r.addr) {
			c.st.Reads++
			c.st.WriteQueueForwards++
			if start > last {
				last = start
			}
			continue
		}
		d := c.issueRead(ch, r.loc, start)
		c.st.Reads++
		c.st.TotalReadLatency += d - start
		c.st.BytesTransferred += uint64(c.cfg.BlockB)
		if d > last {
			last = d
		}
	}
	return last
}

func (c *Controller) forwardFromWriteQueue(ch *channel, addr uint64) bool {
	for i := len(ch.writeQ) - 1; i >= 0; i-- {
		if ch.writeQ[i].addr == addr {
			return true
		}
	}
	return false
}

// refresh retires every refresh command due by cycle t. Each refresh
// closes all rows and stalls the channel's banks for tRFC. Far-apart
// catch-ups are collapsed arithmetically: only the last refresh before t
// affects bank state, but all of them are counted.
func (c *Controller) refresh(ch *channel, t uint64) {
	if c.cfg.TREFI == 0 {
		return
	}
	if ch.nextRefreshAt == 0 {
		ch.nextRefreshAt = c.cfg.TREFI
	}
	if ch.nextRefreshAt > t {
		return
	}
	missed := (t-ch.nextRefreshAt)/c.cfg.TREFI + 1
	last := ch.nextRefreshAt + (missed-1)*c.cfg.TREFI
	ch.nextRefreshAt = last + c.cfg.TREFI
	c.st.Refreshes += missed
	end := last + c.cfg.TRFC
	for i := range ch.banks {
		b := &ch.banks[i]
		if b.readyAt < end {
			b.readyAt = end
		}
		if b.prechargeOKAt < end {
			b.prechargeOKAt = end
		}
		b.openRow = -1 // refresh closes open rows
	}
}

// issueRead performs the timing arithmetic for a single read and returns
// the cycle its data burst completes.
func (c *Controller) issueRead(ch *channel, loc Location, arrival uint64) uint64 {
	c.refresh(ch, arrival)
	cfg := &c.cfg
	b := &ch.banks[loc.Bank]
	t := max64(arrival, b.readyAt)

	switch {
	case b.openRow == int64(loc.Row):
		c.st.RowHits++
	case b.openRow == -1:
		c.st.RowMisses++
		t = max64(t, b.prechargeOKAt) // row already precharged; just respect state
		t += cfg.TRCD                 // activate -> column
		b.prechargeOKAt = t - cfg.TRCD + cfg.TRAS
	default:
		c.st.RowConflicts++
		tPre := max64(t, b.prechargeOKAt)
		tAct := tPre + cfg.TRP
		t = tAct + cfg.TRCD
		b.prechargeOKAt = tAct + cfg.TRAS
	}
	b.openRow = int64(loc.Row)

	// Column read command: respect write->read turnaround and bus occupancy.
	tCol := max64(t, ch.lastWriteDataEnd+cfg.TWTR)
	if ch.busFreeAt > tCol+cfg.TCL {
		tCol = ch.busFreeAt - cfg.TCL
	}
	dataStart := tCol + cfg.TCL
	dataEnd := dataStart + cfg.TBurst

	b.readyAt = tCol + cfg.TCCD
	if rtp := tCol + cfg.TRTP; rtp > b.prechargeOKAt {
		b.prechargeOKAt = rtp
	}
	ch.busFreeAt = dataEnd
	c.st.BusBusyCycles += cfg.TBurst
	return dataEnd
}

// issueWrite performs the timing arithmetic for one buffered write.
func (c *Controller) issueWrite(ch *channel, loc Location, arrival uint64) uint64 {
	c.refresh(ch, arrival)
	cfg := &c.cfg
	b := &ch.banks[loc.Bank]
	t := max64(arrival, b.readyAt)

	switch {
	case b.openRow == int64(loc.Row):
		c.st.RowHits++
	case b.openRow == -1:
		c.st.RowMisses++
		t = max64(t, b.prechargeOKAt)
		t += cfg.TRCD
		b.prechargeOKAt = t - cfg.TRCD + cfg.TRAS
	default:
		c.st.RowConflicts++
		tPre := max64(t, b.prechargeOKAt)
		tAct := tPre + cfg.TRP
		t = tAct + cfg.TRCD
		b.prechargeOKAt = tAct + cfg.TRAS
	}
	b.openRow = int64(loc.Row)

	tCol := t
	if ch.busFreeAt > tCol+cfg.TCWL {
		tCol = ch.busFreeAt - cfg.TCWL
	}
	dataStart := tCol + cfg.TCWL
	dataEnd := dataStart + cfg.TBurst

	b.readyAt = tCol + cfg.TCCD
	if wr := dataEnd + cfg.TWR; wr > b.prechargeOKAt {
		b.prechargeOKAt = wr
	}
	ch.lastWriteDataEnd = dataEnd
	ch.busFreeAt = dataEnd
	c.st.BusBusyCycles += cfg.TBurst
	c.st.Writes++
	c.st.BytesTransferred += uint64(c.cfg.BlockB)
	return dataEnd
}

// drainChannel issues buffered writes (row-hit-first) until the queue
// shrinks to target entries.
func (c *Controller) drainChannel(ch *channel, target int, now uint64) {
	for len(ch.writeQ) > target {
		pick := 0
		for i, w := range ch.writeQ {
			loc := c.cfg.Decode(w.addr)
			if ch.banks[loc.Bank].openRow == int64(loc.Row) {
				pick = i
				break
			}
		}
		w := ch.writeQ[pick]
		ch.writeQ = append(ch.writeQ[:pick], ch.writeQ[pick+1:]...)
		c.issueWrite(ch, c.cfg.Decode(w.addr), max64(w.arrival, now))
	}
}

// Drain flushes all buffered writes on every channel and returns the cycle
// when the last one completes (or now if none were pending).
func (c *Controller) Drain(now uint64) uint64 {
	end := now
	for i := range c.ch {
		ch := &c.ch[i]
		for len(ch.writeQ) > 0 {
			w := ch.writeQ[0]
			ch.writeQ = ch.writeQ[1:]
			if d := c.issueWrite(ch, c.cfg.Decode(w.addr), max64(w.arrival, now)); d > end {
				end = d
			}
		}
	}
	return end
}

// PendingWrites returns the total buffered write count across channels.
func (c *Controller) PendingWrites() int {
	n := 0
	for i := range c.ch {
		n += len(c.ch[i].writeQ)
	}
	return n
}

// RowHitRate returns row hits / all row-buffer lookups.
func (s Stats) RowHitRate() float64 {
	total := s.RowHits + s.RowMisses + s.RowConflicts
	if total == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(total)
}

// AvgReadLatency returns the mean read latency in cycles.
func (s Stats) AvgReadLatency() float64 {
	if s.Reads == 0 {
		return 0
	}
	// Forwarded reads contribute zero latency, which is intended: they
	// never left the controller.
	return float64(s.TotalReadLatency) / float64(s.Reads)
}

// String summarizes the stats for logs.
func (s Stats) String() string {
	return fmt.Sprintf("reads=%d writes=%d rowHit=%.2f fwd=%d bytes=%d",
		s.Reads, s.Writes, s.RowHitRate(), s.WriteQueueForwards, s.BytesTransferred)
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
