package dram

import "testing"

// TestFRFCFSHitReorderSignature distinguishes FR-FCFS from plain FCFS by
// its stats signature. With [conflict, hit, conflict] pending on one bank
// and the hit's row open, FR-FCFS serves the hit first against the still-
// open row: 1 hit + 2 conflicts. Arrival-order FCFS would close the row
// on the first conflict and score 0 hits + 3 conflicts.
func TestFRFCFSHitReorderSignature(t *testing.T) {
	cfg := testCfg()
	c := MustNewController(cfg)
	c.Batch(0, []uint64{0}, nil) // open row 0 of bank 0: one miss
	rowStride := cfg.RowBytes * uint64(cfg.Channels) * uint64(cfg.Ranks*cfg.Banks)
	hitAddr := uint64(cfg.Channels * cfg.BlockB) // row 0, next column
	c.Batch(2000, []uint64{1 * rowStride, hitAddr, 2 * rowStride}, nil)
	st := c.Stats()
	if st.RowMisses != 1 || st.RowHits != 1 || st.RowConflicts != 2 {
		t.Fatalf("FR-FCFS signature should be 1 miss + 1 hit + 2 conflicts, got %+v", st)
	}
}

// TestFCFSOrderWithoutRowHits pins the scheduler's other half: with no
// open-row hit available, requests are served strictly in arrival order.
// The order is observed through which row each probe leaves open — the
// last-arriving row must survive, the first-arriving must not.
func TestFCFSOrderWithoutRowHits(t *testing.T) {
	cfg := testCfg()
	rowStride := cfg.RowBytes * uint64(cfg.Channels) * uint64(cfg.Ranks*cfg.Banks)
	colStride := uint64(cfg.Channels * cfg.BlockB)

	c := MustNewController(cfg)
	c.Batch(0, []uint64{0, rowStride, 2 * rowStride}, nil)
	st := c.Stats()
	if st.RowMisses != 1 || st.RowConflicts != 2 || st.RowHits != 0 {
		t.Fatalf("closed-bank all-distinct-rows batch should be 1 miss + 2 conflicts, got %+v", st)
	}
	// Row 2 arrived last, so it was served last and is still open.
	c.Batch(2000, []uint64{2*rowStride + colStride}, nil)
	if st := c.Stats(); st.RowHits != 1 {
		t.Fatalf("last-arriving row not left open: %+v", st)
	}

	// Symmetric probe: the first-arriving row was evicted by the later
	// conflicts, so re-reading it conflicts again.
	c2 := MustNewController(cfg)
	c2.Batch(0, []uint64{0, rowStride, 2 * rowStride}, nil)
	c2.Batch(2000, []uint64{colStride}, nil) // row 0 again
	if st := c2.Stats(); st.RowHits != 0 || st.RowConflicts != 3 {
		t.Fatalf("first-arriving row unexpectedly open: %+v", st)
	}
}

// TestBatchServicesEveryReadOnce is the conservation invariant behind the
// bandwidth results: every read in a batch — duplicates included — is
// serviced exactly once, transfers one full block, and is classified as
// exactly one of hit/miss/conflict.
func TestBatchServicesEveryReadOnce(t *testing.T) {
	cfg := testCfg()
	c := MustNewController(cfg)
	var reads []uint64
	for i := 0; i < 16; i++ {
		reads = append(reads, uint64(i)*uint64(cfg.BlockB)*7)
	}
	reads = append(reads, reads[3], reads[5]) // duplicates are distinct requests
	done := c.Batch(100, reads, nil)
	st := c.Stats()
	if st.Reads != uint64(len(reads)) {
		t.Fatalf("serviced %d reads, want %d", st.Reads, len(reads))
	}
	if want := uint64(len(reads)) * uint64(cfg.BlockB); st.BytesTransferred != want {
		t.Fatalf("transferred %d bytes, want %d", st.BytesTransferred, want)
	}
	if sum := st.RowHits + st.RowMisses + st.RowConflicts; sum != uint64(len(reads)) {
		t.Fatalf("hit/miss/conflict sum %d, want %d: %+v", sum, len(reads), st)
	}
	if done <= 100 {
		t.Fatalf("batch completed at %d, not after its start", done)
	}
}
