// Package dram is an event-driven main-memory timing model in the style of
// USIMM (Chatterjee et al., the simulator the paper evaluates on): multiple
// channels, each with ranks and banks, an open-row policy, FR-FCFS read
// scheduling, and watermark-based write draining.
//
// Rather than ticking every DRAM cycle, the model advances time with
// resource-availability arithmetic: each command's issue time is the max of
// the channel bus, bank, and arrival constraints, and each completion
// updates those resources. For the serialized access streams an ORAM
// controller produces this yields the same first-order behaviour — row
// hits vs misses vs conflicts, bank parallelism, read/write turnaround —
// at a tiny fraction of the cost, which is what lets the harness replay
// millions of ORAM operations per benchmark.
//
// All times are in DRAM clock cycles (800 MHz in the paper's Table III,
// i.e. DDR3-1600).
package dram

import "fmt"

// Config describes the memory system geometry and timing.
type Config struct {
	Channels int // independent memory channels
	Ranks    int // ranks per channel
	Banks    int // banks per rank
	RowBytes uint64
	BlockB   int // transfer granularity (cache line), bytes

	// Core DDR3 timing constraints, in DRAM cycles.
	TRCD   uint64 // activate -> column command
	TRP    uint64 // precharge -> activate
	TCL    uint64 // read column command -> first data
	TCWL   uint64 // write column command -> first data
	TRAS   uint64 // activate -> precharge (min row open time)
	TBurst uint64 // data burst occupancy of the bus (BL8 = 4 cycles)
	TWR    uint64 // write recovery before precharge
	TRTP   uint64 // read -> precharge
	TCCD   uint64 // column command -> column command, same rank
	TWTR   uint64 // write data end -> next read command

	// InterleaveBlocks sets the channel-interleave granularity in blocks:
	// consecutive runs of this many blocks map to one channel before the
	// next channel takes over. 1 (the default via DDR3_1600) spreads every
	// bucket across channels; a bucket-sized granularity keeps each bucket
	// in one channel, trading intra-bucket parallelism for row locality —
	// the dimension the imbalance-aware Ring ORAM scheduler (Che et al.,
	// ICCD'19) optimizes.
	InterleaveBlocks int

	// Refresh: every TREFI cycles a channel stalls all banks for TRFC
	// while a refresh command executes. TREFI == 0 disables refresh.
	TREFI uint64 // refresh interval (DDR3: 7.8 us = 6240 cycles at 800 MHz)
	TRFC  uint64 // refresh cycle time (4 Gb parts: ~208 cycles)

	// Write-queue drain policy (USIMM-style watermarks).
	WriteQueueCap int // buffered writes per channel before forced drain
	WriteDrainLo  int // drain stops when the queue falls to this level
}

// DDR3_1600 returns the configuration used by all experiments: 4 channels
// at 800 MHz matching Table III, with standard DDR3-1600 (11-11-11)
// timing and 8 KB rows.
func DDR3_1600() Config {
	return Config{
		Channels:         4,
		Ranks:            2,
		Banks:            8,
		RowBytes:         8 << 10,
		BlockB:           64,
		TRCD:             11,
		TRP:              11,
		TCL:              11,
		TCWL:             8,
		TRAS:             28,
		TBurst:           4,
		TWR:              12,
		TRTP:             6,
		TCCD:             4,
		TWTR:             6,
		InterleaveBlocks: 1,
		TREFI:            6240,
		TRFC:             208,

		WriteQueueCap: 64,
		WriteDrainLo:  32,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Channels <= 0 || c.Ranks <= 0 || c.Banks <= 0 {
		return fmt.Errorf("dram: non-positive geometry %d/%d/%d", c.Channels, c.Ranks, c.Banks)
	}
	if c.BlockB <= 0 || c.RowBytes == 0 || c.RowBytes%uint64(c.BlockB) != 0 {
		return fmt.Errorf("dram: row size %d not a multiple of block size %d", c.RowBytes, c.BlockB)
	}
	if c.TBurst == 0 || c.TCL == 0 || c.TRCD == 0 || c.TRP == 0 {
		return fmt.Errorf("dram: zero core timing parameter")
	}
	if c.WriteQueueCap <= 0 || c.WriteDrainLo < 0 || c.WriteDrainLo >= c.WriteQueueCap {
		return fmt.Errorf("dram: invalid write watermarks lo=%d cap=%d", c.WriteDrainLo, c.WriteQueueCap)
	}
	if c.TREFI > 0 && c.TRFC == 0 {
		return fmt.Errorf("dram: refresh enabled (tREFI=%d) with zero tRFC", c.TREFI)
	}
	if c.TREFI > 0 && c.TRFC >= c.TREFI {
		return fmt.Errorf("dram: tRFC %d >= tREFI %d leaves no service time", c.TRFC, c.TREFI)
	}
	return nil
}

// Location is a decoded physical address.
type Location struct {
	Channel int
	Bank    int // flattened rank*banks + bank
	Row     uint64
	Col     uint64 // block index within the row
}

// Decode maps a byte address to its physical location. Consecutive blocks
// interleave across channels (fine-grained interleaving, USIMM's default),
// then walk the columns of one row in one bank, so a run of contiguous
// blocks enjoys both channel parallelism and row-buffer hits — the layout
// property AB-ORAM's remote allocation perturbs.
func (c Config) Decode(addr uint64) Location {
	blk := addr / uint64(c.BlockB)
	gran := uint64(c.InterleaveBlocks)
	if gran == 0 {
		gran = 1
	}
	group := blk / gran
	ch := group % uint64(c.Channels)
	rest := group/uint64(c.Channels)*gran + blk%gran
	rowBlocks := c.RowBytes / uint64(c.BlockB)
	col := rest % rowBlocks
	rest /= rowBlocks
	nBanks := uint64(c.Ranks * c.Banks)
	bank := rest % nBanks
	row := rest / nBanks
	return Location{Channel: int(ch), Bank: int(bank), Row: row, Col: col}
}
