package dram

import (
	"testing"
	"testing/quick"
)

func testCfg() Config {
	return DDR3_1600()
}

func TestConfigValidate(t *testing.T) {
	good := testCfg()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.Channels = 0 },
		func(c *Config) { c.Banks = -1 },
		func(c *Config) { c.RowBytes = 100 }, // not multiple of 64
		func(c *Config) { c.TBurst = 0 },
		func(c *Config) { c.WriteDrainLo = c.WriteQueueCap },
	}
	for i, mut := range mutations {
		c := testCfg()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d: expected invalid", i)
		}
	}
}

func TestDecodeRoundRobinChannels(t *testing.T) {
	cfg := testCfg()
	for i := 0; i < 16; i++ {
		loc := cfg.Decode(uint64(i * cfg.BlockB))
		if loc.Channel != i%cfg.Channels {
			t.Errorf("block %d mapped to channel %d, want %d", i, loc.Channel, i%cfg.Channels)
		}
	}
}

func TestDecodeRowLocality(t *testing.T) {
	cfg := testCfg()
	// Blocks i and i+Channels land in the same channel; while the column
	// index stays within one row they must share bank and row.
	a := cfg.Decode(0)
	b := cfg.Decode(uint64(cfg.Channels * cfg.BlockB))
	if a.Channel != b.Channel || a.Bank != b.Bank || a.Row != b.Row {
		t.Errorf("stride-by-channels blocks should share a row: %+v vs %+v", a, b)
	}
	if b.Col != a.Col+1 {
		t.Errorf("column should advance by one: %+v vs %+v", a, b)
	}
}

func TestDecodeFieldsInRange(t *testing.T) {
	cfg := testCfg()
	f := func(addr uint64) bool {
		loc := cfg.Decode(addr % (1 << 40))
		return loc.Channel >= 0 && loc.Channel < cfg.Channels &&
			loc.Bank >= 0 && loc.Bank < cfg.Ranks*cfg.Banks &&
			loc.Col < cfg.RowBytes/uint64(cfg.BlockB)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSingleReadLatencyClosedRow(t *testing.T) {
	c := MustNewController(testCfg())
	cfg := c.Config()
	done := c.Batch(0, []uint64{0}, nil)
	want := cfg.TRCD + cfg.TCL + cfg.TBurst
	if done != want {
		t.Errorf("cold read latency %d, want %d", done, want)
	}
	st := c.Stats()
	if st.Reads != 1 || st.RowMisses != 1 || st.RowHits != 0 {
		t.Errorf("stats %+v", st)
	}
}

func TestRowHitFasterThanConflict(t *testing.T) {
	cfg := testCfg()

	// Same row twice: second access is a row hit.
	c1 := MustNewController(cfg)
	c1.Batch(0, []uint64{0}, nil)
	hitDone := c1.Batch(1000, []uint64{uint64(cfg.Channels * cfg.BlockB)}, nil)
	if c1.Stats().RowHits != 1 {
		t.Fatalf("expected a row hit, stats %+v", c1.Stats())
	}

	// Different row in the same bank: conflict.
	c2 := MustNewController(cfg)
	c2.Batch(0, []uint64{0}, nil)
	conflictAddr := cfg.RowBytes * uint64(cfg.Channels) * uint64(cfg.Ranks*cfg.Banks)
	if loc := cfg.Decode(conflictAddr); loc.Channel != 0 || loc.Bank != 0 || loc.Row == 0 {
		t.Fatalf("test address decodes to %+v; want channel 0 bank 0 new row", loc)
	}
	confDone := c2.Batch(1000, []uint64{conflictAddr}, nil)
	if c2.Stats().RowConflicts != 1 {
		t.Fatalf("expected a row conflict, stats %+v", c2.Stats())
	}

	if hitDone >= confDone {
		t.Errorf("row hit (%d) not faster than conflict (%d)", hitDone, confDone)
	}
}

func TestChannelParallelism(t *testing.T) {
	cfg := testCfg()
	// 4 reads on 4 different channels should finish in roughly single-read
	// time; 4 reads on one channel serialize on its data bus.
	parallel := MustNewController(cfg)
	var spread []uint64
	for i := 0; i < cfg.Channels; i++ {
		spread = append(spread, uint64(i*cfg.BlockB))
	}
	pDone := parallel.Batch(0, spread, nil)

	serial := MustNewController(cfg)
	var sameCh []uint64
	for i := 0; i < cfg.Channels; i++ {
		// Same channel, different banks (stride channels*rowBytes).
		sameCh = append(sameCh, uint64(i)*cfg.RowBytes*uint64(cfg.Channels))
	}
	sDone := serial.Batch(0, sameCh, nil)

	if pDone >= sDone {
		t.Errorf("channel-parallel batch (%d) not faster than single-channel batch (%d)", pDone, sDone)
	}
}

func TestFRFCFSPrefersRowHit(t *testing.T) {
	cfg := testCfg()
	c := MustNewController(cfg)
	// Open row 0 in bank 0.
	c.Batch(0, []uint64{0}, nil)
	rowStride := cfg.RowBytes * uint64(cfg.Channels) * uint64(cfg.Ranks*cfg.Banks)
	hitAddr := uint64(cfg.Channels * cfg.BlockB) // row 0, next column
	confAddr := rowStride                        // bank 0, different row
	// Conflict request is older (listed first) but FR-FCFS must serve the
	// row hit first; the hit's completion therefore precedes a pure FCFS
	// schedule. Verify via row-hit count: with FR-FCFS the hit is serviced
	// against the still-open row. (Issue before the first tREFI deadline so
	// a refresh does not close the row.)
	c.Batch(2000, []uint64{confAddr, hitAddr}, nil)
	st := c.Stats()
	if st.RowHits != 1 || st.RowConflicts != 1 {
		t.Errorf("FR-FCFS should score 1 hit + 1 conflict, got %+v", st)
	}
}

func TestWriteQueueBuffersAndDrains(t *testing.T) {
	cfg := testCfg()
	c := MustNewController(cfg)
	done := c.Batch(0, nil, []uint64{0, 64, 128})
	if done != 0 {
		t.Errorf("posted writes should not delay the batch, done=%d", done)
	}
	if c.PendingWrites() != 3 {
		t.Errorf("pending = %d, want 3", c.PendingWrites())
	}
	end := c.Drain(0)
	if end == 0 || c.PendingWrites() != 0 {
		t.Errorf("drain end=%d pending=%d", end, c.PendingWrites())
	}
	if c.Stats().Writes != 3 {
		t.Errorf("writes = %d", c.Stats().Writes)
	}
}

func TestForcedDrainOnFullQueue(t *testing.T) {
	cfg := testCfg()
	cfg.WriteQueueCap = 4
	cfg.WriteDrainLo = 1
	c := MustNewController(cfg)
	// 8 writes to one channel: must trigger forced drains.
	var writes []uint64
	for i := 0; i < 8; i++ {
		writes = append(writes, uint64(i)*uint64(cfg.Channels*cfg.BlockB))
	}
	c.Batch(0, nil, writes)
	if c.Stats().ForcedWriteDrains == 0 {
		t.Error("no forced drain despite overflowing queue")
	}
	if c.PendingWrites() >= cfg.WriteQueueCap {
		t.Errorf("queue still at/over capacity: %d", c.PendingWrites())
	}
}

func TestWriteQueueForwarding(t *testing.T) {
	c := MustNewController(testCfg())
	c.Batch(0, nil, []uint64{0x1000})
	c.Batch(0, []uint64{0x1000}, nil)
	if st := c.Stats(); st.WriteQueueForwards != 1 {
		t.Errorf("forwards = %d, want 1", st.WriteQueueForwards)
	}
}

func TestStatsMonotoneTime(t *testing.T) {
	c := MustNewController(testCfg())
	var now uint64
	for i := 0; i < 1000; i++ {
		addr := uint64(i*7919) % (1 << 30)
		addr -= addr % 64
		done := c.Batch(now, []uint64{addr}, []uint64{addr + 64})
		if done < now {
			t.Fatalf("time went backwards: %d < %d", done, now)
		}
		now = done
	}
	st := c.Stats()
	if st.Reads != 1000 {
		t.Errorf("reads = %d", st.Reads)
	}
	if st.RowHits+st.RowMisses+st.RowConflicts+st.WriteQueueForwards < 1000 {
		t.Errorf("row outcomes undercounted: %+v", st)
	}
}

func TestContiguousBucketBeatsScattered(t *testing.T) {
	// The property AB-ORAM's §V-D discussion depends on: reading a
	// physically contiguous bucket (row hits) is faster than reading the
	// same number of scattered blocks (row misses/conflicts).
	cfg := testCfg()
	warm := func(addrs []uint64) uint64 {
		c := MustNewController(cfg)
		// Touch a spread of rows first so scattered accesses conflict.
		var warmup []uint64
		for i := 0; i < 64; i++ {
			warmup = append(warmup, uint64(i)*cfg.RowBytes*uint64(cfg.Channels))
		}
		start := c.Batch(0, warmup, nil)
		c.ResetStats()
		return c.Batch(start, addrs, nil) - start
	}
	var contiguous, scattered []uint64
	for i := 0; i < 8; i++ {
		contiguous = append(contiguous, uint64(i*cfg.BlockB))
		scattered = append(scattered, uint64(i)*cfg.RowBytes*uint64(cfg.Channels)*uint64(cfg.Ranks*cfg.Banks)+uint64(i%4*cfg.BlockB))
	}
	ct := warm(contiguous)
	st := warm(scattered)
	if ct >= st {
		t.Errorf("contiguous bucket read (%d) not faster than scattered (%d)", ct, st)
	}
}

func TestResetStatsKeepsTiming(t *testing.T) {
	c := MustNewController(testCfg())
	c.Batch(0, []uint64{0}, nil)
	c.ResetStats()
	if c.Stats().Reads != 0 {
		t.Fatal("stats not reset")
	}
	// Row 0 must still be open: the next same-row access is a hit.
	c.Batch(1000, []uint64{uint64(testCfg().Channels * testCfg().BlockB)}, nil)
	if c.Stats().RowHits != 1 {
		t.Errorf("timing state lost on ResetStats: %+v", c.Stats())
	}
}

func TestRowHitRateAndAvgLatency(t *testing.T) {
	var s Stats
	if s.RowHitRate() != 0 || s.AvgReadLatency() != 0 {
		t.Fatal("empty stats should read 0")
	}
	s = Stats{RowHits: 3, RowMisses: 1, Reads: 4, TotalReadLatency: 100}
	if s.RowHitRate() != 0.75 {
		t.Errorf("hit rate %v", s.RowHitRate())
	}
	if s.AvgReadLatency() != 25 {
		t.Errorf("avg latency %v", s.AvgReadLatency())
	}
}

func BenchmarkBatchPathRead(b *testing.B) {
	cfg := testCfg()
	c := MustNewController(cfg)
	// A 20-block path read, one block per bucket spread over the tree.
	addrs := make([]uint64, 20)
	for i := range addrs {
		addrs[i] = uint64(i) * 123456 * 64
	}
	var now uint64
	for i := 0; i < b.N; i++ {
		now = c.Batch(now, addrs, nil)
	}
}

func TestRefreshStallsAndClosesRows(t *testing.T) {
	cfg := testCfg()
	c := MustNewController(cfg)
	// Open a row well before the first refresh deadline.
	c.Batch(0, []uint64{0}, nil)
	// Issue after the refresh deadline: the refresh must have closed the
	// row (miss, not hit) and stalled the bank.
	c.Batch(cfg.TREFI+1, []uint64{uint64(cfg.Channels * cfg.BlockB)}, nil)
	st := c.Stats()
	if st.Refreshes == 0 {
		t.Fatal("no refresh executed")
	}
	if st.RowHits != 0 {
		t.Errorf("row survived refresh: %+v", st)
	}
}

func TestRefreshCatchUpCount(t *testing.T) {
	cfg := testCfg()
	c := MustNewController(cfg)
	// A long idle period must account for every missed refresh.
	c.Batch(cfg.TREFI*10+5, []uint64{0}, nil)
	if got := c.Stats().Refreshes; got != 10 {
		t.Errorf("refreshes = %d, want 10", got)
	}
}

func TestRefreshDisabled(t *testing.T) {
	cfg := testCfg()
	cfg.TREFI = 0
	c := MustNewController(cfg)
	c.Batch(0, []uint64{0}, nil)
	c.Batch(1<<20, []uint64{uint64(cfg.Channels * cfg.BlockB)}, nil)
	st := c.Stats()
	if st.Refreshes != 0 {
		t.Fatal("refresh ran while disabled")
	}
	if st.RowHits != 1 {
		t.Errorf("row should survive with refresh disabled: %+v", st)
	}
}

func TestRefreshConfigValidation(t *testing.T) {
	cfg := testCfg()
	cfg.TRFC = 0
	if err := cfg.Validate(); err == nil {
		t.Fatal("tRFC=0 with refresh enabled accepted")
	}
	cfg = testCfg()
	cfg.TRFC = cfg.TREFI
	if err := cfg.Validate(); err == nil {
		t.Fatal("tRFC >= tREFI accepted")
	}
}

func TestInterleaveGranularity(t *testing.T) {
	cfg := testCfg()
	cfg.InterleaveBlocks = 8
	// Blocks 0..7 share channel 0; 8..15 land on channel 1.
	for i := 0; i < 8; i++ {
		if loc := cfg.Decode(uint64(i * cfg.BlockB)); loc.Channel != 0 {
			t.Fatalf("block %d on channel %d, want 0", i, loc.Channel)
		}
	}
	if loc := cfg.Decode(uint64(8 * cfg.BlockB)); loc.Channel != 1 {
		t.Fatalf("block 8 on channel %d, want 1", loc.Channel)
	}
	// Within a run, consecutive blocks advance the column (row locality).
	a, b := cfg.Decode(0), cfg.Decode(uint64(cfg.BlockB))
	if a.Bank != b.Bank || a.Row != b.Row || b.Col != a.Col+1 {
		t.Fatalf("intra-run locality broken: %+v vs %+v", a, b)
	}
	// Every block still decodes to a unique (channel, bank, row, col).
	seen := map[Location]uint64{}
	for i := 0; i < 4096; i++ {
		loc := cfg.Decode(uint64(i * cfg.BlockB))
		if prev, dup := seen[loc]; dup {
			t.Fatalf("blocks %d and %d collide at %+v", prev, i, loc)
		}
		seen[loc] = uint64(i)
	}
}
