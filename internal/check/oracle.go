// Package check is the correctness harness of the repository: a
// differential oracle that drives every scheme in lockstep against a
// plaintext memory model, a minimizer that shrinks failing op sequences
// into replayable repros, and statistical tests that the observable
// access pattern stays oblivious (chi-square leaf uniformity plus
// reverse-lexicographic eviction order). The sim.RunVerify audit and the
// fuzz targets build on it; EXPERIMENTS.md §"Correctness harness"
// documents how to run and replay it by hand.
package check

import (
	"bytes"
	"fmt"
	"sort"

	"repro/aboram"
	"repro/internal/core"
	"repro/internal/rng"
)

// OpKind labels one oracle operation.
type OpKind uint8

const (
	// OpWrite stores a deterministic payload into a block.
	OpWrite OpKind = iota
	// OpRead fetches a block and compares it against the model.
	OpRead
	// OpAccess touches a block pattern-only (no payload transfer).
	OpAccess
	// OpCheckpoint saves the instance and restores it from the image,
	// continuing on the restored copy.
	OpCheckpoint
)

// String returns the kind's display name.
func (k OpKind) String() string {
	switch k {
	case OpWrite:
		return "write"
	case OpRead:
		return "read"
	case OpAccess:
		return "access"
	case OpCheckpoint:
		return "checkpoint"
	default:
		return "unknown"
	}
}

// Op is one step of an oracle sequence.
type Op struct {
	Kind  OpKind
	Block int64
	Fill  byte // payload selector for OpWrite
}

// String renders the op compactly for repro listings.
func (op Op) String() string {
	if op.Kind == OpCheckpoint {
		return "checkpoint"
	}
	if op.Kind == OpWrite {
		return fmt.Sprintf("write(%d, %#02x)", op.Block, op.Fill)
	}
	return fmt.Sprintf("%s(%d)", op.Kind, op.Block)
}

// GenOps derives a randomized op sequence from a seed: roughly 35% writes
// and 35% reads (half of them against a small hot set, so blocks are
// rewritten and re-read rather than touched once), 30% pattern-only
// accesses, and sparse checkpoint round-trips. The sequence is a pure
// function of (seed, n, numBlocks) — replaying the same triple reproduces
// the exact workload.
func GenOps(seed uint64, n int, numBlocks int64) []Op {
	r := rng.New(seed ^ 0x6f7261636c65) // offset the stream from protocol seeds
	hot := numBlocks/16 + 1
	ops := make([]Op, 0, n)
	for i := 0; i < n; i++ {
		blk := int64(r.Uint64n(uint64(numBlocks)))
		if r.Bool() {
			blk = int64(r.Uint64n(uint64(hot)))
		}
		switch p := r.Float64(); {
		case p < 0.35:
			ops = append(ops, Op{Kind: OpWrite, Block: blk, Fill: byte(r.Uint64())})
		case p < 0.70:
			ops = append(ops, Op{Kind: OpRead, Block: blk})
		case p < 0.997:
			ops = append(ops, Op{Kind: OpAccess, Block: blk})
		default:
			ops = append(ops, Op{Kind: OpCheckpoint})
		}
	}
	return ops
}

// Fill expands a (block, fill) pair into the deterministic payload the
// oracle writes and later expects back.
func Fill(blockB int, block int64, fill byte) []byte {
	d := make([]byte, blockB)
	for i := range d {
		d[i] = fill ^ byte(block>>uint(i%8)) ^ byte(i*13)
	}
	return d
}

// Target is the device under test: the block-store surface the oracle can
// drive and validate. The production implementation wraps the aboram
// public API with its encrypted secmem data plane; tests substitute
// mutated targets to prove the oracle detects corruption.
type Target interface {
	NumBlocks() int64
	BlockSize() int
	Access(block int64) error
	Read(block int64) ([]byte, error)
	Write(block int64, data []byte) error
	// Checkpoint saves the instance and continues on a restored copy.
	Checkpoint() error
	// CheckIntegrity validates the full internal state.
	CheckIntegrity() error
}

// oracleKey is the fixed 16-byte AES key oracle instances run under; the
// oracle always exercises the encrypted data plane.
var oracleKey = []byte("ab-oram-check-ke")

// aboramTarget adapts a full aboram instance (protocol engine + DeadQ +
// encrypted secmem) to the Target interface.
type aboramTarget struct {
	o   *aboram.ORAM
	opt aboram.Options
}

// NewSchemeTarget builds an encrypted aboram instance of the given scheme
// as an oracle target.
func NewSchemeTarget(s core.Scheme, levels int, seed uint64) (Target, error) {
	opt := aboram.Options{Scheme: s, Levels: levels, Seed: seed, EncryptionKey: oracleKey}
	o, err := aboram.New(opt)
	if err != nil {
		return nil, err
	}
	return &aboramTarget{o: o, opt: opt}, nil
}

func (t *aboramTarget) NumBlocks() int64                  { return t.o.NumBlocks() }
func (t *aboramTarget) BlockSize() int                    { return t.o.BlockSize() }
func (t *aboramTarget) Access(block int64) error          { return t.o.Access(block) }
func (t *aboramTarget) Read(block int64) ([]byte, error)  { return t.o.Read(block) }
func (t *aboramTarget) Write(block int64, d []byte) error { return t.o.Write(block, d) }
func (t *aboramTarget) CheckIntegrity() error             { return t.o.CheckIntegrity() }

// Checkpoint snapshots the instance through the public Save/Load path and
// swaps in the restored copy, so every subsequent op validates the
// checkpoint's fidelity.
func (t *aboramTarget) Checkpoint() error {
	var buf bytes.Buffer
	if err := t.o.Save(&buf); err != nil {
		return err
	}
	o, err := aboram.Load(t.opt, &buf)
	if err != nil {
		return err
	}
	t.o = o
	return nil
}

// Divergence reports the first point where a target disagreed with the
// plaintext model. OpIndex == len(ops) marks the final sweep (exhaustive
// read-back plus integrity check) rather than a specific op.
type Divergence struct {
	OpIndex int
	Op      Op
	Detail  string
}

func (d *Divergence) String() string {
	return fmt.Sprintf("op %d (%s): %s", d.OpIndex, d.Op, d.Detail)
}

// Failure is a scheme's complete, replayable oracle failure: the instance
// parameters, the generating seed, and a minimized repro sequence.
type Failure struct {
	Scheme core.Scheme
	Levels int
	Seed   uint64
	Div    Divergence
	Repro  []Op
}

// Error renders the failure with everything needed to replay it.
func (f *Failure) Error() string {
	return fmt.Sprintf("check: scheme %s (levels=%d) diverged at %s; "+
		"replay: check.Replay(%q, %d, %#x, <repro of %d ops>) or re-run "+
		"GenOps(%#x, n, numBlocks) against a fresh target",
		f.Scheme, f.Levels, &f.Div, f.Scheme, f.Levels, f.Seed, len(f.Repro), f.Seed)
}

// applyOp drives one op against a target, keeping the shared model in
// sync. want is the model's expectation, computed by the caller so that
// several lockstep targets share one model update.
func applyOp(t Target, i int, op Op, want []byte) *Divergence {
	fail := func(format string, args ...interface{}) *Divergence {
		return &Divergence{OpIndex: i, Op: op, Detail: fmt.Sprintf(format, args...)}
	}
	switch op.Kind {
	case OpWrite:
		if err := t.Write(op.Block, want); err != nil {
			return fail("write: %v", err)
		}
	case OpRead:
		got, err := t.Read(op.Block)
		if err != nil {
			return fail("read: %v", err)
		}
		if d := diff(got, want); d != "" {
			return fail("read mismatch: %s", d)
		}
	case OpAccess:
		if err := t.Access(op.Block); err != nil {
			return fail("access: %v", err)
		}
	case OpCheckpoint:
		if err := t.Checkpoint(); err != nil {
			return fail("checkpoint round trip: %v", err)
		}
	}
	return nil
}

// diff describes the first disagreement between two payloads, or "" when
// they match.
func diff(got, want []byte) string {
	if len(got) != len(want) {
		return fmt.Sprintf("length %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			return fmt.Sprintf("byte %d is %#02x, want %#02x", i, got[i], want[i])
		}
	}
	return ""
}

// expect returns the model's content for a block (zeros if never written)
// without allocating for the common written case.
func expect(model map[int64][]byte, blockB int, blk int64) []byte {
	if d, ok := model[blk]; ok {
		return d
	}
	return make([]byte, blockB)
}

// finalSweep reads back every block the model knows about — in sorted
// order, so replays are deterministic — and runs a full integrity check.
func finalSweep(t Target, model map[int64][]byte, opCount int) *Divergence {
	blocks := make([]int64, 0, len(model))
	for blk := range model {
		blocks = append(blocks, blk)
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
	for _, blk := range blocks {
		got, err := t.Read(blk)
		if err != nil {
			return &Divergence{OpIndex: opCount, Op: Op{Kind: OpRead, Block: blk}, Detail: fmt.Sprintf("final sweep read: %v", err)}
		}
		if d := diff(got, model[blk]); d != "" {
			return &Divergence{OpIndex: opCount, Op: Op{Kind: OpRead, Block: blk}, Detail: "final sweep mismatch: " + d}
		}
	}
	if err := t.CheckIntegrity(); err != nil {
		return &Divergence{OpIndex: opCount, Detail: "final integrity: " + err.Error()}
	}
	return nil
}

// RunTarget drives one target through an op sequence against a fresh
// plaintext model, with periodic integrity checks and a final exhaustive
// read-back. It returns the first divergence, or nil on a clean run. The
// run is a pure function of (target construction, ops), which is what
// makes minimized repros meaningful.
func RunTarget(t Target, ops []Op) *Divergence {
	model := make(map[int64][]byte)
	interval := len(ops)/4 + 1
	blockB := t.BlockSize()
	for i, op := range ops {
		var want []byte
		switch op.Kind {
		case OpWrite:
			want = Fill(blockB, op.Block, op.Fill)
		case OpRead:
			want = expect(model, blockB, op.Block)
		}
		if d := applyOp(t, i, op, want); d != nil {
			return d
		}
		if op.Kind == OpWrite {
			model[op.Block] = want
		}
		if (i+1)%interval == 0 {
			if err := t.CheckIntegrity(); err != nil {
				return &Divergence{OpIndex: i, Op: op, Detail: "integrity: " + err.Error()}
			}
		}
	}
	return finalSweep(t, model, len(ops))
}

// Result is one scheme's outcome from RunOracle.
type Result struct {
	Scheme  core.Scheme
	Ops     int // ops applied before divergence (or all of them)
	Failure *Failure
}

// RunOracle generates one op sequence from the seed and drives all five
// schemes through it in lockstep against a single shared plaintext model:
// every write updates the model once, and every read from every scheme
// must agree with it — which also makes the schemes pairwise equivalent.
// A diverging scheme stops participating while the rest continue, and its
// failure is minimized into a replayable repro. The error aggregates the
// first failure (nil when all schemes agree everywhere).
func RunOracle(levels int, seed uint64, n int) ([]Result, error) {
	schemes := core.Schemes()
	targets := make([]Target, len(schemes))
	results := make([]Result, len(schemes))
	for i, s := range schemes {
		t, err := NewSchemeTarget(s, levels, seed)
		if err != nil {
			return nil, fmt.Errorf("check: building %s: %w", s, err)
		}
		targets[i] = t
		results[i] = Result{Scheme: s}
	}
	ops := GenOps(seed, n, targets[0].NumBlocks())
	blockB := targets[0].BlockSize()
	model := make(map[int64][]byte)
	interval := len(ops)/4 + 1

	divs := make([]*Divergence, len(schemes))
	for i, op := range ops {
		var want []byte
		switch op.Kind {
		case OpWrite:
			want = Fill(blockB, op.Block, op.Fill)
		case OpRead:
			want = expect(model, blockB, op.Block)
		}
		for si := range targets {
			if divs[si] != nil {
				continue
			}
			if d := applyOp(targets[si], i, op, want); d != nil {
				divs[si] = d
				continue
			}
			if (i+1)%interval == 0 {
				if err := targets[si].CheckIntegrity(); err != nil {
					divs[si] = &Divergence{OpIndex: i, Op: op, Detail: "integrity: " + err.Error()}
				}
			}
			results[si].Ops = i + 1
		}
		if op.Kind == OpWrite {
			model[op.Block] = want
		}
	}
	for si := range targets {
		if divs[si] == nil {
			divs[si] = finalSweep(targets[si], model, len(ops))
		}
	}

	var firstErr error
	for si, d := range divs {
		if d == nil {
			continue
		}
		s := schemes[si]
		repro := Minimize(func() (Target, error) {
			return NewSchemeTarget(s, levels, seed)
		}, ops, d, 64)
		results[si].Failure = &Failure{Scheme: s, Levels: levels, Seed: seed, Div: *d, Repro: repro}
		if firstErr == nil {
			firstErr = results[si].Failure
		}
	}
	return results, firstErr
}

// Minimize shrinks a failing op sequence while preserving the failure:
// first truncate to the failing prefix, then greedily delete chunks of
// halving size (ddmin-style), re-running the sequence on a fresh target
// from mk after each candidate deletion. budget bounds the number of
// replays; the current best repro is returned when it runs out. The
// result is not guaranteed minimal — only monotonically smaller and still
// failing.
func Minimize(mk func() (Target, error), ops []Op, div *Divergence, budget int) []Op {
	fails := func(cand []Op) bool {
		if budget <= 0 {
			return false
		}
		budget--
		t, err := mk()
		if err != nil {
			return false
		}
		return RunTarget(t, cand) != nil
	}

	cur := append([]Op(nil), ops...)
	if div != nil && div.OpIndex < len(ops) {
		trunc := append([]Op(nil), ops[:div.OpIndex+1]...)
		if fails(trunc) {
			cur = trunc
		}
	}
	for chunk := len(cur) / 2; chunk >= 1 && budget > 0; chunk /= 2 {
		for start := 0; start+chunk <= len(cur) && budget > 0; {
			cand := make([]Op, 0, len(cur)-chunk)
			cand = append(cand, cur[:start]...)
			cand = append(cand, cur[start+chunk:]...)
			if fails(cand) {
				cur = cand
			} else {
				start += chunk
			}
		}
	}
	return cur
}

// Replay re-runs a repro sequence against a fresh instance of the given
// configuration, returning the divergence it reproduces (nil if the
// failure no longer occurs).
func Replay(s core.Scheme, levels int, seed uint64, ops []Op) (*Divergence, error) {
	t, err := NewSchemeTarget(s, levels, seed)
	if err != nil {
		return nil, err
	}
	return RunTarget(t, ops), nil
}
