package check

import (
	"strings"
	"testing"
)

// TestRetrySchedules is the acceptance gate for crash-durable dedup: a
// batch of seeded kill-recover schedules drives the retry protocol
// (in-doubt retries after crashes, duplicates replayed across restarts
// after conflicting writes) and must find zero exactly-once violations.
// Across the run the interesting events must actually occur: crashes,
// in-doubt retries, dedup absorptions, cross-crash duplicates, and at
// least one genuine re-execution.
func TestRetrySchedules(t *testing.T) {
	opsPer := 260
	seeds := 10
	if testing.Short() {
		opsPer, seeds = 120, 4
	}

	total := &RetryReport{}
	for seed := uint64(1); seed <= uint64(seeds); seed++ {
		rep, err := RunRetrySchedule(t.TempDir(), seed, opsPer, RetryOptions{})
		if err != nil {
			t.Fatalf("schedule %d: %v (report so far: %v)", seed, err, rep)
		}
		t.Logf("%v", rep)
		total.Crashes += rep.Crashes
		total.AckedWrites += rep.AckedWrites
		total.InDoubt += rep.InDoubt
		total.DedupSkips += rep.DedupSkips
		total.Straddles += rep.Straddles
		total.Reexecuted += rep.Reexecuted
	}

	if total.Crashes == 0 {
		t.Fatal("no crashes were injected; the schedules prove nothing")
	}
	if total.InDoubt == 0 || total.DedupSkips == 0 {
		t.Fatalf("degenerate schedules: %d in-doubt retries, %d dedup skips", total.InDoubt, total.DedupSkips)
	}
	if total.Straddles == 0 {
		t.Fatalf("no cross-crash duplicate was ever replayed: %v", total)
	}
}

// TestRetryScheduleNegativeControl reverts dedup persistence in
// simulation (the recovered id set is ignored, as if the snapshot/WAL
// ids were never read back) and demands the oracle FAIL: a harness that
// cannot see double-applies is not protecting anything. The observed
// failure must be a state divergence, not a harness plumbing error.
func TestRetryScheduleNegativeControl(t *testing.T) {
	detected := 0
	for seed := uint64(1); seed <= 8; seed++ {
		rep, err := RunRetrySchedule(t.TempDir(), seed, 260, RetryOptions{IgnoreRecoveredIDs: true})
		if err == nil {
			// A schedule with no cross-crash duplicate replay can pass
			// honestly; only count runs where the control had a chance.
			if rep.Straddles > 0 && rep.Reexecuted > 0 {
				t.Fatalf("seed %d: schedule passed despite forgetting the dedup window (%v)", seed, rep)
			}
			continue
		}
		if !strings.Contains(err.Error(), "exactly-once violation") &&
			!strings.Contains(err.Error(), "diverged") {
			t.Fatalf("seed %d: control failed for the wrong reason: %v", seed, err)
		}
		detected++
		t.Logf("seed %d: control detected as expected: %v", seed, err)
	}
	if detected == 0 {
		t.Fatal("negative control never tripped: the oracle cannot detect a reverted dedup window")
	}
}

// TestRetryScheduleDeterminism locks in seed-purity of the retry
// schedules, same as the base crash oracle.
func TestRetryScheduleDeterminism(t *testing.T) {
	a, err := RunRetrySchedule(t.TempDir(), 77, 150, RetryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunRetrySchedule(t.TempDir(), 77, 150, RetryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("same seed diverged:\n  %v\n  %v", a, b)
	}
}
