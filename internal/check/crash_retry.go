package check

import (
	"bytes"
	"fmt"

	"repro/aboram"
	"repro/internal/durable"
	"repro/internal/faults"
	"repro/internal/rng"
	"repro/internal/vfs"
)

// This file extends the kill-recover oracle with the exactly-once
// contract for retried writes: every write carries a wire request id,
// the durable engine logs the id in the WAL (and snapshot header), and a
// restarted daemon seeds its retry-dedup window from RecentWriteIDs. The
// schedule drives the retry protocol the real client+front-end pair
// implements, across injected kills:
//
//   - a write in doubt at a crash (errored, maybe applied) is retried
//     after recovery; if its id is in the recovered set, the retry is
//     answered from the window (not re-executed), otherwise it executes
//     for real — either way exactly-once;
//   - occasionally a duplicate of an ACKED write is held back and
//     replayed in a LATER incarnation, after a conflicting write to the
//     same block — the crash-straddling retry. A correct recovered
//     window absorbs it; re-executing it would roll the block back.
//
// RetryOptions.IgnoreRecoveredIDs is the negative control: it models a
// server whose dedup window forgot everything at restart (i.e. the id
// persistence reverted), so straddling duplicates re-execute and the
// schedule must FAIL — proving the oracle detects double-applies.

// RetryOptions tunes RunRetrySchedule.
type RetryOptions struct {
	// IgnoreRecoveredIDs makes the simulated server forget its dedup
	// window across restarts: cross-crash duplicates re-execute instead
	// of being answered from the recovered id set. The schedule is then
	// expected to fail its model check.
	IgnoreRecoveredIDs bool
}

// RetryReport summarizes one seeded retry schedule.
type RetryReport struct {
	Seed        uint64
	Rounds      int
	Crashes     int
	AckedWrites int
	InDoubt     int // writes retried because a crash left them in doubt
	DedupSkips  int // retries/duplicates absorbed by the recovered id set
	Straddles   int // cross-crash duplicates staged and replayed
	Reexecuted  int // retries that executed for real (id not recovered)
}

func (r *RetryReport) String() string {
	return fmt.Sprintf("seed %d: %d rounds, %d crashes, %d acked, %d in-doubt retries, %d dedup skips, %d straddling dups, %d re-executed",
		r.Seed, r.Rounds, r.Crashes, r.AckedWrites, r.InDoubt, r.DedupSkips, r.Straddles, r.Reexecuted)
}

// retryWrite is one identified write the schedule may retry or replay.
type retryWrite struct {
	id    uint64
	block int64
	data  []byte
	old   []byte // model content before the write (either-value rule)
}

// RunRetrySchedule runs a seeded schedule of identified writes against
// the durable engine through crash-injected filesystems, exercising the
// retry protocol across kills. It returns an error on the first
// exactly-once violation (a lost acked write, a rolled-back block, an
// acked id missing from the recovered set, or a recovered id whose write
// did not survive).
func RunRetrySchedule(dir string, seed uint64, totalOps int, opt RetryOptions) (*RetryReport, error) {
	r := rng.New(seed ^ 0x7265747279) // decorrelated schedule stream
	rep := &RetryReport{Seed: seed}

	probe, err := aboram.New(crashOptions(dir, seed, vfs.OS{}, false).ORAM)
	if err != nil {
		return nil, err
	}
	blockB, numBlocks := probe.BlockSize(), probe.NumBlocks()

	model := make(map[int64][]byte)
	acked := make(map[uint64]bool) // ids acknowledged across the whole schedule
	var inDoubt *retryWrite        // single write in flight at the last crash
	var staged *retryWrite         // acked write held back as a cross-crash duplicate

	nextID := uint64(0)
	opsDone := 0
	maxRounds := totalOps + 16
	for opsDone < totalOps {
		if rep.Rounds >= maxRounds {
			return rep, fmt.Errorf("check: retry schedule %d made no progress after %d rounds", seed, rep.Rounds)
		}
		rep.Rounds++

		in := faults.New(faults.Config{
			Seed:       r.Uint64(),
			CrashAfter: 1 + int(r.Uint64n(60)),
			TornWrites: true,
		})
		eng, err := durable.Open(crashOptions(dir, seed, faults.WrapFS(vfs.OS{}, in), false))
		if err != nil {
			if !in.Crashed() {
				return rep, fmt.Errorf("check: round %d: recovery failed without a crash: %w", rep.Rounds, err)
			}
			rep.Crashes++
			continue
		}

		recovered := make(map[uint64]bool)
		for _, id := range eng.RecentWriteIDs() {
			recovered[id] = true
		}

		// Crash-durable dedup invariant: every acknowledged id must be in
		// the recovered set (the schedule stays far below DedupTrack, so
		// capacity eviction cannot excuse an absence).
		for id := range acked {
			if !recovered[id] {
				eng.Close()
				return rep, fmt.Errorf("check: round %d: acked id %#x missing from recovered set (size %d)",
					rep.Rounds, id, len(recovered))
			}
		}

		// Resolve the write in doubt from the previous incarnation. If its
		// id was recovered the write IS applied (recovered-implies-applied)
		// and the retry is a dedup hit; otherwise it executes for real.
		crashed := false
		if inDoubt != nil {
			w := inDoubt
			rep.InDoubt++
			if recovered[w.id] && !opt.IgnoreRecoveredIDs {
				got, err := eng.Read(w.block)
				if err != nil {
					eng.Close()
					return rep, fmt.Errorf("check: round %d: reading recovered block %d: %w", rep.Rounds, w.block, err)
				}
				if !bytes.Equal(got, w.data) {
					eng.Close()
					return rep, fmt.Errorf("check: round %d: id %#x recovered but block %d does not hold its write",
						rep.Rounds, w.id, w.block)
				}
				rep.DedupSkips++
				model[w.block] = w.data
				acked[w.id] = true
				inDoubt = nil
			} else {
				// Not recovered (or the control pretends it is not): the
				// retry executes. Either-value held before; after an ack it
				// must be the new value.
				if err := eng.WriteIdentified(w.id, w.block, w.data); err != nil {
					if !in.Crashed() {
						eng.Close()
						return rep, fmt.Errorf("check: round %d: retry failed without a crash: %w", rep.Rounds, err)
					}
					crashed = true // still in doubt; next round retries again
				} else {
					rep.Reexecuted++
					model[w.block] = w.data
					acked[w.id] = true
					inDoubt = nil
				}
			}
		}

		// Replay the staged cross-crash duplicate: first a conflicting
		// write to the same block (fresh id), then the duplicate itself.
		// Correct dedup absorbs the duplicate and the conflict's value
		// stays; re-executing it rolls the block back, which the model
		// check below catches.
		if !crashed && staged != nil && opsDone < totalOps {
			dup := staged
			nextID++
			conflict := &retryWrite{id: nextID, block: dup.block,
				data: Fill(blockB, dup.block, byte(r.Uint64())^0xA5), old: model[dup.block]}
			opsDone++
			if err := eng.WriteIdentified(conflict.id, conflict.block, conflict.data); err != nil {
				if !in.Crashed() {
					eng.Close()
					return rep, fmt.Errorf("check: round %d: conflict write failed without a crash: %w", rep.Rounds, err)
				}
				inDoubt = conflict
				crashed = true // duplicate stays staged for the next round
			} else {
				model[conflict.block] = conflict.data
				acked[conflict.id] = true
				rep.AckedWrites++
				rep.Straddles++
				staged = nil
				if recovered[dup.id] && !opt.IgnoreRecoveredIDs {
					rep.DedupSkips++ // absorbed: model keeps the conflict's value
				} else {
					// The simulated server forgot the id: the duplicate
					// re-executes, but the MODEL keeps the conflict's value —
					// exactly-once semantics say a duplicate of an acked
					// write must not change state. The read-back check
					// reports the regression.
					if err := eng.WriteIdentified(dup.id, dup.block, dup.data); err != nil {
						if !in.Crashed() {
							eng.Close()
							return rep, fmt.Errorf("check: round %d: duplicate write failed without a crash: %w", rep.Rounds, err)
						}
						crashed = true
					}
				}
			}
		}

		// Normal serving until the op budget or the crash point.
		for !crashed && opsDone < totalOps {
			block := int64(r.Uint64n(uint64(numBlocks)))
			nextID++
			w := &retryWrite{id: nextID, block: block,
				data: Fill(blockB, block, byte(r.Uint64())), old: model[block]}
			opsDone++
			if err := eng.WriteIdentified(w.id, w.block, w.data); err != nil {
				if !in.Crashed() {
					eng.Close()
					return rep, fmt.Errorf("check: op %d: write failed without a crash: %w", opsDone, err)
				}
				inDoubt = w
				crashed = true
				break
			}
			model[w.block] = w.data
			acked[w.id] = true
			rep.AckedWrites++
			// Occasionally hold an acked write back as a future
			// cross-crash duplicate.
			if staged == nil && r.Float64() < 0.25 {
				staged = w
			}
			// Interleave reads to catch rollbacks early.
			if r.Float64() < 0.3 {
				got, err := eng.Read(block)
				if err != nil {
					if !in.Crashed() {
						eng.Close()
						return rep, fmt.Errorf("check: op %d: read failed without a crash: %w", opsDone, err)
					}
					crashed = true
					break
				}
				if !bytes.Equal(got, model[block]) {
					eng.Close()
					return rep, fmt.Errorf("check: op %d: block %d diverged from model pre-crash", opsDone, block)
				}
			}
		}

		// Model read-back for this incarnation (skip blocks in doubt).
		if !crashed {
			for blk, want := range model {
				if inDoubt != nil && inDoubt.block == blk {
					continue
				}
				got, err := eng.Read(blk)
				if err != nil {
					if in.Crashed() {
						crashed = true
						break
					}
					eng.Close()
					return rep, fmt.Errorf("check: round %d: reading block %d: %w", rep.Rounds, blk, err)
				}
				if !bytes.Equal(got, want) {
					eng.Close()
					return rep, fmt.Errorf("check: round %d: block %d lost or rolled back (exactly-once violation)",
						rep.Rounds, blk)
				}
			}
		}
		eng.Close()
		if crashed {
			rep.Crashes++
		}
	}

	// Final clean recovery: the full model must read back and every acked
	// id must still be recoverable.
	rep.Rounds++
	eng, err := durable.Open(crashOptions(dir, seed, vfs.OS{}, false))
	if err != nil {
		return rep, fmt.Errorf("check: final recovery: %w", err)
	}
	defer eng.Close()
	recovered := make(map[uint64]bool)
	for _, id := range eng.RecentWriteIDs() {
		recovered[id] = true
	}
	for id := range acked {
		if !recovered[id] {
			return rep, fmt.Errorf("check: final recovery: acked id %#x missing from recovered set", id)
		}
	}
	if inDoubt != nil {
		// The schedule ended with a write still in doubt: pin it by the
		// either-value rule before the sweep.
		got, err := eng.Read(inDoubt.block)
		if err != nil {
			return rep, fmt.Errorf("check: final recovery: reading in-doubt block %d: %w", inDoubt.block, err)
		}
		old := inDoubt.old
		if old == nil {
			old = make([]byte, blockB)
		}
		switch {
		case bytes.Equal(got, inDoubt.data):
			model[inDoubt.block] = inDoubt.data
		case bytes.Equal(got, old):
		default:
			return rep, fmt.Errorf("check: final recovery: in-doubt block %d holds neither value", inDoubt.block)
		}
	}
	for blk, want := range model {
		got, err := eng.Read(blk)
		if err != nil {
			return rep, fmt.Errorf("check: final recovery: reading block %d: %w", blk, err)
		}
		if !bytes.Equal(got, want) {
			return rep, fmt.Errorf("check: final recovery: block %d lost or rolled back (exactly-once violation)", blk)
		}
	}
	return rep, nil
}
