package check

import "testing"

// TestGroupCommitSchedules is the acceptance gate for group commit:
// seeded batched-write schedules under a volatile-page-cache fault model
// (unsynced appends survive crashes only as seeded prefixes) must lose
// no batch-synced write, and the whole run must fsync strictly less
// often than it appends — the amortization the feature exists for.
func TestGroupCommitSchedules(t *testing.T) {
	opsPer := 260
	seeds := 10
	if testing.Short() {
		opsPer, seeds = 120, 4
	}

	total := &GroupReport{}
	for seed := uint64(1); seed <= uint64(seeds); seed++ {
		rep, err := RunGroupCommitSchedule(t.TempDir(), seed, opsPer)
		if err != nil {
			t.Fatalf("schedule %d: %v (report so far: %v)", seed, err, rep)
		}
		t.Logf("%v", rep)
		total.Crashes += rep.Crashes
		total.AckedWrites += rep.AckedWrites
		total.Writes += rep.Writes
		total.Syncs += rep.Syncs
		total.Batched += rep.Batched
		total.Dropped += rep.Dropped
	}

	if total.Crashes == 0 {
		t.Fatal("no crashes were injected; the schedules prove nothing")
	}
	if total.AckedWrites == 0 || total.Batched == 0 {
		t.Fatalf("degenerate schedules: %d acked, %d batched syncs", total.AckedWrites, total.Batched)
	}
	if total.Syncs >= total.Writes {
		t.Fatalf("no amortization across the run: %d syncs for %d appends", total.Syncs, total.Writes)
	}
	if total.Dropped == 0 {
		t.Fatalf("the volatile page cache never dropped an unsynced write; the loss window was not exercised: %v", total)
	}
}

// TestGroupCommitScheduleDeterminism locks in seed-purity.
func TestGroupCommitScheduleDeterminism(t *testing.T) {
	a, err := RunGroupCommitSchedule(t.TempDir(), 99, 150)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunGroupCommitSchedule(t.TempDir(), 99, 150)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("same seed diverged:\n  %v\n  %v", a, b)
	}
}
