package check

import (
	"math"
	"testing"

	"repro/aboram"
	"repro/internal/core"
	"repro/internal/server"
)

// TestShardLeakUniformWorkload audits a real 4-shard engine under a
// uniform workload: the per-shard histogram must match the routing law's
// prediction and every shard's leaf sequence must stay uniform.
func TestShardLeakUniformWorkload(t *testing.T) {
	res, err := CheckShardLeak(core.SchemeAB, 8, 4, 11, 512, UniformBlocks(11))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%v", res)
	var total uint64
	for _, c := range res.Observed {
		total += c
	}
	if total != 512 {
		t.Fatalf("observed histogram sums to %d, want 512 (ops lost or double-counted)", total)
	}
	if len(res.Leaves) != 4 {
		t.Fatalf("leaf-audited %d shards, want all 4 under a uniform workload", len(res.Leaves))
	}
	if !res.Pass() {
		t.Fatalf("honest router failed the audit: %v", res)
	}
}

// TestShardLeakHotBlock pins the "nothing more" side of the bound: a
// workload hammering one block concentrates ALL traffic on one shard
// (that is the log2(P)-bit leak, and the routing law predicts it
// exactly), yet the hot shard's revealed leaf sequence must remain
// uniform — the intra-shard pattern stays oblivious.
func TestShardLeakHotBlock(t *testing.T) {
	const hot = 5 // 5 mod 4 = shard 1
	res, err := CheckShardLeak(core.SchemeAB, 8, 4, 13, 512, HotBlock(hot))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%v", res)
	for i, c := range res.Observed {
		want := uint64(0)
		if i == hot%4 {
			want = 512
		}
		if c != want {
			t.Fatalf("shard %d observed %d ops, want %d", i, c, want)
		}
	}
	if len(res.Leaves) != 1 {
		t.Fatalf("leaf-audited %d shards, want exactly the hot one", len(res.Leaves))
	}
	if !res.Pass() {
		t.Fatalf("hot-block audit failed: the predicted concentration or leaf uniformity broke: %v", res)
	}
}

// TestShardLeakDetectsBiasedRouter is the negative control: histograms
// produced by deliberately broken routers must fail the chi-square
// comparison against the honest law's prediction.
func TestShardLeakDetectsBiasedRouter(t *testing.T) {
	const shards, n = 4, 1024
	w := UniformBlocks(17)
	blocks := make([]int64, n)
	for i := range blocks {
		blocks[i] = w(i) % (1 << 20)
	}
	crit := ChiSquareCritical(shards-1, ZCrit999)

	// A router that collapses everything onto shard 0: gross bias.
	collapsed := routeHistogram(blocks, shards, func(b int64, p int) (int, int64) { return 0, b })
	if stat, _ := shardHistogramChi2(collapsed, blocks, shards); stat <= crit {
		t.Fatalf("collapse-to-0 router passed: chi2 %.3f <= critical %.3f", stat, crit)
	}

	// A router that sticks shard 1's traffic onto shard 0 (a wedged
	// scheduler silently absorbing a neighbor's load): under a uniform
	// workload shard 1's predicted quarter lands on shard 0 — and the
	// prediction rules shard-1 silence out entirely, so the statistic
	// must blow up.
	stuck := routeHistogram(blocks, shards, func(b int64, p int) (int, int64) {
		s, l := server.RouteBlock(b, p)
		if s == 1 {
			s = 0
		}
		return s, l
	})
	if stat, _ := shardHistogramChi2(stuck, blocks, shards); stat <= crit {
		t.Fatalf("stuck-shard router passed: chi2 %.3f <= critical %.3f", stat, crit)
	}

	// A router that swaps shards 0 and 1. Under a uniform workload the
	// marginals barely move (a histogram audit cannot see a
	// load-preserving permutation), so the control uses a skewed
	// workload — most traffic ≡ 1 mod 4 — where the swap visibly moves
	// mass onto the wrong shard.
	skewed := make([]int64, n)
	for i := range skewed {
		if i%10 < 7 {
			skewed[i] = int64(4*i + 1) // ≡ 1 mod 4
		} else {
			skewed[i] = w(i) % (1 << 20)
		}
	}
	swapped := routeHistogram(skewed, shards, func(b int64, p int) (int, int64) {
		s, l := server.RouteBlock(b, p)
		if s < 2 {
			s = 1 - s
		}
		return s, l
	})
	if stat, _ := shardHistogramChi2(swapped, skewed, shards); stat <= crit {
		t.Fatalf("swap-0-1 router passed under a skewed workload: chi2 %.3f <= critical %.3f", stat, crit)
	}

	// The honest router is its own prediction: exact agreement.
	honest := routeHistogram(blocks, shards, server.RouteBlock)
	if stat, _ := shardHistogramChi2(honest, blocks, shards); stat != 0 {
		t.Fatalf("honest router chi2 %.3f, want exact 0 against its own law", stat)
	}
}

// TestShardLeakMidMigration audits a deployment frozen mid-reshard
// (2→3 at a fixed watermark): the per-cell histogram across BOTH fleets
// must match what dual routing predicts, and every tree's revealed leaf
// sequence must stay uniform under its own generation's seed. The
// negative control scores the same observations against the
// pre-migration law (watermark 0): every op the target fleet served
// lands in a cell that law forbids, so the statistic must blow up to
// +Inf — a trace that leaked "a migration is under way, and this far
// along" in any cell placement the public watermark doesn't explain
// would be caught the same way.
func TestShardLeakMidMigration(t *testing.T) {
	const from, to, watermark, accesses = 2, 3, 400, 1024
	const seed = 19
	res, err := CheckShardLeakMigrating(core.SchemeAB, 8, from, to, watermark, seed, accesses, UniformBlocks(seed))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%v", res)
	var total uint64
	for _, c := range res.Observed {
		total += c
	}
	if total != accesses {
		t.Fatalf("observed histogram sums to %d, want %d (ops lost or double-counted)", total, accesses)
	}
	if len(res.Leaves) != from+to {
		t.Fatalf("leaf-audited %d cells, want all %d under a uniform workload", len(res.Leaves), from+to)
	}
	if !res.Pass() {
		t.Fatalf("honest dual routing failed the mid-migration audit: %v", res)
	}

	// Negative control: the same observations against the wrong law.
	probe, err := aboram.New(aboram.Options{Levels: 8, Seed: server.ShardSeed(seed, 0), EncryptionKey: oracleKey})
	if err != nil {
		t.Fatal(err)
	}
	n := probe.NumBlocks() * int64(from) // served space mid-migration: perShard*min(from, to)
	w := UniformBlocks(seed)
	blocks := make([]int64, accesses)
	for i := range blocks {
		b := w(i) % n
		if b < 0 {
			b += n
		}
		blocks[i] = b
	}
	wrong := migratingHistogram(blocks, 0, from, to)
	if stat, _ := ChiSquareExpected(res.Observed, wrong); !math.IsInf(stat, 1) {
		t.Fatalf("mid-migration trace passed against the watermark-0 law: chi2 %.3f", stat)
	}
}

// TestChiSquareExpected covers the comparison primitive itself: exact
// match, bounded noise, an impossible-cell observation, and degenerate
// inputs.
func TestChiSquareExpected(t *testing.T) {
	if stat, df := ChiSquareExpected([]uint64{10, 20, 30}, []float64{10, 20, 30}); stat != 0 || df != 2 {
		t.Fatalf("exact match: (%.3f, %d), want (0, 2)", stat, df)
	}
	if stat, _ := ChiSquareExpected([]uint64{1, 0, 0}, []float64{0, 0.5, 0.5}); !math.IsInf(stat, 1) {
		t.Fatalf("observation in an impossible cell scored %.3f, want +Inf", stat)
	}
	if stat, df := ChiSquareExpected([]uint64{0, 7}, []float64{0, 7}); stat != 0 || df != 0 {
		t.Fatalf("single live cell: (%.3f, %d), want the degenerate (0, 0)", stat, df)
	}
	stat, df := ChiSquareExpected([]uint64{12, 8}, []float64{10, 10})
	if df != 1 || stat <= 0 {
		t.Fatalf("noisy counts: (%.3f, %d), want positive stat with df 1", stat, df)
	}
	if want := 0.8; math.Abs(stat-want) > 1e-9 {
		t.Fatalf("noisy counts stat %.6f, want %.6f", stat, want)
	}
}
