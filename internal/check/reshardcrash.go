package check

import (
	"bytes"
	"context"
	"crypto/sha256"
	"fmt"
	"time"

	"repro/aboram"
	"repro/internal/durable"
	"repro/internal/faults"
	"repro/internal/rng"
	"repro/internal/server"
	"repro/internal/vfs"
)

// Reshard kill-recover oracle: a live P→P′ migration driven end to end
// — durable shard fleets, migration journal, dual-routing Sharded —
// over a fault-injecting filesystem that kills the "daemon" at seeded
// mutation counts. One injector covers every fleet directory AND the
// journal, so the kills land mid-range-copy (shard WAL appends and
// snapshot publishes), mid-journal-append (the reshard.tmp publish
// steps), mid-cutover, and inside recovery itself (the next round's
// engine opens). After every kill the oracle recovers exactly the way
// aboramd does — scan the journal, ResolveReshard, reopen the fleets of
// the resolved generations, resume the migration from the durable
// watermark — and checks:
//
//   - zero acked-write loss: every write acknowledged before the kill
//     reads back with its exact content through the recovered routing,
//     in every incarnation;
//   - no double-apply / rollback: a block never surfaces a value other
//     than its latest acknowledged one (the single in-flight write at
//     the kill may legally surface either its old or its new content,
//     and is then pinned to whichever recovery chose);
//   - convergence: the schedule ends with the migration complete (or
//     rolled back, in Abort mode) and the final layout's content
//     fingerprint byte-identical to an offline rebuild — fresh P′
//     trees fed the acknowledged model directly.
//
// The fault schedule is a pure function of the seed; the copier runs
// concurrently with the writer, so the oracle asserts invariants, not
// exact interleavings.

// ReshardCrashOptions tunes one schedule.
type ReshardCrashOptions struct {
	// Seed drives the kill schedule, the workload, and the tree RNG.
	Seed uint64
	// Dir is the data directory (must start empty).
	Dir string
	// From and To are the shard counts to migrate between.
	From, To int
	// Levels is the per-shard tree height (default 8, the scheme
	// minimum).
	Levels int
	// Abort flips the schedule into a rollback: once the copy has made
	// progress the migration is aborted, and the oracle expects the old
	// layout back with every acknowledged write intact.
	Abort bool
	// RangeSize is the copier's fenced range (default 8 — small, so a
	// schedule crosses many journal records and kills can land inside
	// journal appends, not just shard-store writes).
	RangeSize int64
	// KillWindow bounds the injected kill: each incarnation dies after
	// 1 + seed mod KillWindow filesystem mutations (default 700 —
	// large enough for real copy progress between kills, small enough
	// that a schedule dies many times per migration).
	KillWindow int
	// WritesPerRound caps the client writes issued per incarnation
	// (default 60).
	WritesPerRound int
	// MaxRounds bounds incarnations before the schedule is declared
	// stuck (default 400).
	MaxRounds int
}

func (o ReshardCrashOptions) withDefaults() ReshardCrashOptions {
	if o.Levels <= 0 {
		o.Levels = 8
	}
	if o.RangeSize <= 0 {
		o.RangeSize = 8
	}
	if o.KillWindow <= 0 {
		o.KillWindow = 700
	}
	if o.WritesPerRound <= 0 {
		o.WritesPerRound = 60
	}
	if o.MaxRounds <= 0 {
		o.MaxRounds = 400
	}
	return o
}

// ReshardCrashReport summarizes one schedule.
type ReshardCrashReport struct {
	Seed        uint64
	From, To    int
	Rounds      int            // incarnations, crashed or clean
	Crashes     int            // injected kills (serving or recovery)
	Resumes     int            // incarnations that resumed an in-flight migration
	Sites       map[string]int // crash-site histogram by file kind
	AckedWrites int            // writes acknowledged across all rounds
	Aborted     bool           // the journal shows a completed rollback
	FinalShards int
	FinalGen    uint64
	Fingerprint [32]byte // SHA-256 over the final layout's plaintext blocks in order
}

func (r *ReshardCrashReport) String() string {
	return fmt.Sprintf("reshard crash oracle seed %d (%d→%d): %d rounds, %d crashes (sites %v), %d resumes, %d acked writes, aborted=%v, final %d shards gen %d",
		r.Seed, r.From, r.To, r.Rounds, r.Crashes, r.Sites, r.Resumes, r.AckedWrites, r.Aborted, r.FinalShards, r.FinalGen)
}

// reshardJournalAdapter binds a durable.ReshardJournal to one
// migration's generation, the way aboramd's controller does.
type reshardJournalAdapter struct {
	j   *durable.ReshardJournal
	gen uint64
	to  int
}

func (a *reshardJournalAdapter) RecordRange(w int64) error {
	return a.j.Append(durable.ReshardRecord{Op: durable.ReshardRange, Gen: a.gen, Watermark: w})
}
func (a *reshardJournalAdapter) RecordCutover() error {
	return a.j.Append(durable.ReshardRecord{Op: durable.ReshardCutover, Gen: a.gen, To: a.to})
}
func (a *reshardJournalAdapter) RecordAbortBegin() error {
	return a.j.Append(durable.ReshardRecord{Op: durable.ReshardAbortBegin, Gen: a.gen})
}
func (a *reshardJournalAdapter) RecordAborted() error {
	return a.j.Append(durable.ReshardRecord{Op: durable.ReshardAborted, Gen: a.gen})
}

// reshardCrashRun is one schedule's state threaded across incarnations.
type reshardCrashRun struct {
	opt     ReshardCrashOptions
	r       *rng.Source
	rep     *ReshardCrashReport
	blockB  int
	space   int64 // writable address space: perShard * min(From, To)
	model   map[int64][]byte
	pending *pendingWrite
	seq     uint64
}

// fleet opens one generation's shard engines on fs; on failure the
// already-opened prefix is closed.
func (run *reshardCrashRun) fleet(fs vfs.FS, gen uint64, shards int) ([]*durable.Engine, error) {
	engines := make([]*durable.Engine, 0, shards)
	for i := 0; i < shards; i++ {
		eng, err := durable.Open(durable.Options{
			Dir:           durable.ShardDir(run.opt.Dir, gen, i, shards),
			ORAM:          aboram.Options{Levels: run.opt.Levels, Seed: server.ShardSeed(server.GenSeed(run.opt.Seed, gen), i), EncryptionKey: oracleKey},
			SnapshotEvery: 16,
			FS:            fs,
		})
		if err != nil {
			closeReshardFleet(engines)
			return nil, err
		}
		engines = append(engines, eng)
	}
	return engines, nil
}

func closeReshardFleet(engines []*durable.Engine) {
	for _, e := range engines {
		if e != nil {
			e.Close()
		}
	}
}

func asServerEngines(engines []*durable.Engine) []server.Engine {
	out := make([]server.Engine, len(engines))
	for i, e := range engines {
		out[i] = e
	}
	return out
}

// verify checks the recovered routing against the acknowledged model:
// pending first (either value legal, then pinned), then acknowledged
// blocks byte-exact. sample > 0 bounds how many model blocks the check
// reads (a per-round cost control — loss is permanent, so the full
// sweep in finish still catches anything a sample missed, just later).
func (run *reshardCrashRun) verify(sh *server.Sharded, stage string, sample int) error {
	ctx := context.Background()
	if p := run.pending; p != nil {
		got, err := sh.Read(ctx, p.block)
		if err != nil {
			return fmt.Errorf("%s: reading pending block %d: %w", stage, p.block, err)
		}
		old := p.old
		if old == nil {
			old = make([]byte, run.blockB)
		}
		switch {
		case bytes.Equal(got, p.new):
			run.model[p.block] = p.new
		case bytes.Equal(got, old):
			if p.old != nil {
				run.model[p.block] = p.old
			}
		default:
			return fmt.Errorf("%s: pending block %d holds neither its old nor its new content", stage, p.block)
		}
		run.pending = nil
	}
	checked := 0
	for blk, want := range run.model {
		if sample > 0 && checked >= sample {
			break
		}
		checked++
		got, err := sh.Read(ctx, blk)
		if err != nil {
			return fmt.Errorf("%s: reading block %d: %w", stage, blk, err)
		}
		if !bytes.Equal(got, want) {
			return fmt.Errorf("%s: block %d lost its acknowledged content", stage, blk)
		}
	}
	return nil
}

func reshardFill(blockB int, block int64, seq uint64) []byte {
	d := make([]byte, blockB)
	for i := range d {
		d[i] = byte(seq) ^ byte(block*7) ^ byte(i*13)
	}
	return d
}

// RunReshardCrashSchedule runs one seeded kill-recover schedule in
// opt.Dir and returns its report, or an error naming the first contract
// violation.
func RunReshardCrashSchedule(opt ReshardCrashOptions) (*ReshardCrashReport, error) {
	opt = opt.withDefaults()
	if opt.From == opt.To || opt.From < 1 || opt.To < 1 {
		return nil, fmt.Errorf("check: reshard oracle needs two distinct positive widths, got %d→%d", opt.From, opt.To)
	}
	probe, err := aboram.New(aboram.Options{Levels: opt.Levels, Seed: opt.Seed, EncryptionKey: oracleKey})
	if err != nil {
		return nil, err
	}
	run := &reshardCrashRun{
		opt:    opt,
		r:      rng.New(opt.Seed ^ 0x7265736864), // decorrelate from the trees' streams
		rep:    &ReshardCrashReport{Seed: opt.Seed, From: opt.From, To: opt.To, Sites: make(map[string]int)},
		blockB: probe.BlockSize(),
		space:  probe.NumBlocks() * int64(min(opt.From, opt.To)),
		model:  make(map[int64][]byte),
	}
	rep := run.rep

	for {
		if rep.Rounds >= opt.MaxRounds {
			return rep, fmt.Errorf("check: reshard schedule %d stuck after %d rounds", opt.Seed, rep.Rounds)
		}
		done, err := run.round()
		if err != nil {
			return rep, err
		}
		if done {
			break
		}
	}
	return rep, run.finish()
}

// round runs one faulted incarnation: recover, resume or begin the
// migration, serve writes until the kill (or completion), tear down.
// It reports done=true once the journal shows the migration terminal.
func (run *reshardCrashRun) round() (done bool, err error) {
	opt, rep := run.opt, run.rep
	rep.Rounds++
	in := faults.New(faults.Config{
		Seed:       run.r.Uint64(),
		CrashAfter: 1 + int(run.r.Uint64n(uint64(opt.KillWindow))),
		TornWrites: true,
	})
	fs := faults.WrapFS(vfs.OS{}, in)

	j, err := durable.OpenReshardJournal(fs, opt.Dir)
	if err != nil {
		return false, fmt.Errorf("check: round %d: opening journal: %w", rep.Rounds, err)
	}
	lay, err := durable.ResolveReshard(j.Records(), opt.From)
	if err != nil {
		// The journal publishes atomically; a crash must never leave an
		// unresolvable history.
		return false, fmt.Errorf("check: round %d: journal resolution: %w", rep.Rounds, err)
	}
	if lay.Active == nil && lay.MaxGen > 0 {
		return true, nil // migration terminal (cut over or rolled back)
	}

	crashRound := func(stage string, closers ...[]*durable.Engine) (bool, error) {
		for _, c := range closers {
			closeReshardFleet(c)
		}
		if !in.Crashed() {
			return false, fmt.Errorf("check: round %d: %s failed without a crash", rep.Rounds, stage)
		}
		rep.Crashes++
		rep.Sites[crashSiteKind(in.CrashSite())]++
		return false, nil
	}

	cur, err := run.fleet(fs, lay.Gen, lay.Shards)
	if err != nil {
		if !in.Crashed() {
			return false, fmt.Errorf("check: round %d: recovering the serving fleet: %w", rep.Rounds, err)
		}
		rep.Crashes++
		rep.Sites[crashSiteKind(in.CrashSite())]++
		return false, nil
	}

	// Resume the journaled migration, or durably begin a new one.
	tgen, tto := lay.MaxGen+1, opt.To
	resuming := lay.Active != nil
	if resuming {
		tgen, tto = lay.Active.Gen, lay.Active.To
		rep.Resumes++
	} else if err := j.Append(durable.ReshardRecord{Op: durable.ReshardBegin, Gen: tgen, From: lay.Shards, To: tto}); err != nil {
		return crashRound("journal begin", cur)
	}
	target, err := run.fleet(fs, tgen, tto)
	if err != nil {
		return crashRound("recovering the target fleet", cur)
	}

	sh, err := server.NewSharded(asServerEngines(cur), server.Config{Queue: 64, Batch: 8})
	if err != nil {
		closeReshardFleet(cur)
		closeReshardFleet(target)
		return false, fmt.Errorf("check: round %d: %w", rep.Rounds, err)
	}
	sh.SetGeneration(lay.Gen)
	cfg := server.ReshardConfig{
		Journal:   &reshardJournalAdapter{j: j, gen: tgen, to: tto},
		RangeSize: opt.RangeSize,
		Gen:       tgen,
	}
	if resuming {
		cfg.Watermark, cfg.Aborting = lay.Active.Watermark, lay.Active.Aborting
	}
	res, err := sh.BeginReshard(asServerEngines(target), cfg)
	if err != nil {
		sh.Close()
		closeReshardFleet(cur)
		closeReshardFleet(target)
		return false, fmt.Errorf("check: round %d: begin: %w", rep.Rounds, err)
	}

	// The recovered dual routing must already serve the acked model (a
	// bounded sample per round; the final sweep reads everything).
	if err := run.verify(sh, fmt.Sprintf("round %d recovery", rep.Rounds), 48); err != nil {
		res.Stop()
		sh.Close()
		closeReshardFleet(cur)
		closeReshardFleet(target)
		return false, err
	}

	runDone := make(chan error, 1)
	go func() { runDone <- res.Run() }()

	ctx := context.Background()
	var migErr error
	migDone, abortAsked, writes := false, false, 0
	writeOne := func() bool {
		blk := int64(run.r.Uint64n(uint64(run.space)))
		run.seq++
		data := reshardFill(run.blockB, blk, run.seq)
		if err := sh.Write(ctx, blk, data); err != nil {
			run.pending = &pendingWrite{block: blk, old: run.model[blk], new: data}
			return false
		}
		run.model[blk] = data
		rep.AckedWrites++
		return true
	}
	for !in.Crashed() && run.pending == nil {
		select {
		case migErr = <-runDone:
			migDone = true
		default:
		}
		if migDone {
			break
		}
		if opt.Abort && !abortAsked {
			if st := res.Status(); st.Watermark > 0 && st.Watermark < st.Total {
				res.Abort() // no-op when already rolling back
				abortAsked = true
			}
		}
		if writes < opt.WritesPerRound {
			if !writeOne() {
				break
			}
			writes++
		} else {
			time.Sleep(200 * time.Microsecond)
		}
	}
	if migDone && migErr == nil && !in.Crashed() {
		// Exercise the cut-over (or rolled-back) layout until the kill or
		// a small extra budget — the schedule also covers post-terminal
		// serving crashes.
		for extra := 0; extra < 24 && !in.Crashed(); extra++ {
			if !writeOne() {
				break
			}
		}
	}
	if !migDone {
		res.Stop()
		migErr = <-runDone
	}
	sh.Close()
	closeReshardFleet(cur)
	closeReshardFleet(target)

	switch {
	case in.Crashed():
		rep.Crashes++
		rep.Sites[crashSiteKind(in.CrashSite())]++
	case run.pending != nil:
		return false, fmt.Errorf("check: round %d: write to block %d failed without a crash", rep.Rounds, run.pending.block)
	case migDone && migErr != nil:
		return false, fmt.Errorf("check: round %d: migration failed without a crash: %w", rep.Rounds, migErr)
	}
	return false, nil
}

// finish recovers the terminal layout on the clean filesystem, verifies
// the full model through it, and fingerprints it against an offline
// rebuild: fresh final-width trees fed the acknowledged model directly.
func (run *reshardCrashRun) finish() error {
	opt, rep := run.opt, run.rep
	rep.Rounds++
	j, err := durable.OpenReshardJournal(vfs.OS{}, opt.Dir)
	if err != nil {
		return fmt.Errorf("check: final recovery: %w", err)
	}
	lay, err := durable.ResolveReshard(j.Records(), opt.From)
	if err != nil {
		return fmt.Errorf("check: final recovery: %w", err)
	}
	if lay.Active != nil {
		return fmt.Errorf("check: final recovery: migration still active (%+v)", lay.Active)
	}
	for _, rec := range j.Records() {
		if rec.Op == durable.ReshardAborted {
			rep.Aborted = true
		}
	}
	rep.FinalShards, rep.FinalGen = lay.Shards, lay.Gen

	fleet, err := run.fleet(vfs.OS{}, lay.Gen, lay.Shards)
	if err != nil {
		return fmt.Errorf("check: final recovery: %w", err)
	}
	defer closeReshardFleet(fleet)
	sh, err := server.NewSharded(asServerEngines(fleet), server.Config{Queue: 64, Batch: 8})
	if err != nil {
		return err
	}
	defer sh.Close()
	if err := run.verify(sh, "final recovery", 0); err != nil {
		return err
	}

	// Online fingerprint: plaintext content of every block, in order.
	ctx := context.Background()
	n := sh.NumBlocks()
	online := sha256.New()
	for b := int64(0); b < n; b++ {
		data, err := sh.Read(ctx, b)
		if err != nil {
			return fmt.Errorf("check: fingerprinting block %d: %w", b, err)
		}
		online.Write(data)
	}
	copy(rep.Fingerprint[:], online.Sum(nil))

	// Offline rebuild: fresh trees at the final width, fed the model.
	rebuilt := make([]*aboram.ORAM, lay.Shards)
	for i := range rebuilt {
		o, err := aboram.New(aboram.Options{Levels: opt.Levels, Seed: server.ShardSeed(server.GenSeed(opt.Seed, lay.Gen), i), EncryptionKey: oracleKey})
		if err != nil {
			return err
		}
		rebuilt[i] = o
	}
	for blk, data := range run.model {
		shard, local := server.RouteBlock(blk, lay.Shards)
		if err := rebuilt[shard].Write(local, data); err != nil {
			return fmt.Errorf("check: offline rebuild write %d: %w", blk, err)
		}
	}
	offline := sha256.New()
	for b := int64(0); b < n; b++ {
		shard, local := server.RouteBlock(b, lay.Shards)
		data, err := rebuilt[shard].Read(local)
		if err != nil {
			return fmt.Errorf("check: offline rebuild read %d: %w", b, err)
		}
		offline.Write(data)
	}
	if !bytes.Equal(online.Sum(nil), offline.Sum(nil)) {
		return fmt.Errorf("check: final layout fingerprint diverges from the offline %d→%d rebuild", opt.From, lay.Shards)
	}
	return nil
}
