package check

import (
	"testing"
)

// TestReshardKillRecover sweeps seeded kill-recover schedules over a
// growing (2→3) and a shrinking (3→2) live migration. Every schedule
// must converge with zero acked-write loss and a final fingerprint
// identical to the offline rebuild; across the sweep the kills must
// have landed in the shard stores (range copies: WAL appends and
// snapshot publishes) AND inside migration-journal appends — the
// mid-range-copy / mid-journal-append / mid-cutover sites the
// crash-safety argument names.
func TestReshardKillRecover(t *testing.T) {
	seeds := []uint64{1, 2, 3, 4}
	if testing.Short() {
		seeds = seeds[:2]
	}
	sites := map[string]int{}
	for _, dir := range []struct {
		name     string
		from, to int
	}{{"grow", 2, 3}, {"shrink", 3, 2}} {
		for _, seed := range seeds {
			rep, err := RunReshardCrashSchedule(ReshardCrashOptions{
				Seed: seed, Dir: t.TempDir(), From: dir.from, To: dir.to,
			})
			if err != nil {
				t.Fatalf("%s seed %d: %v\n%s", dir.name, seed, err, rep)
			}
			t.Logf("%s: %s", dir.name, rep)
			if rep.Crashes == 0 {
				t.Errorf("%s seed %d: schedule never crashed — not testing recovery", dir.name, seed)
			}
			if rep.Resumes == 0 {
				t.Errorf("%s seed %d: schedule never resumed a mid-flight migration", dir.name, seed)
			}
			if rep.FinalShards != dir.to {
				t.Errorf("%s seed %d: final width %d, want %d", dir.name, seed, rep.FinalShards, dir.to)
			}
			if rep.Aborted {
				t.Errorf("%s seed %d: unexpected rollback", dir.name, seed)
			}
			for k, n := range rep.Sites {
				sites[k] += n
			}
		}
	}
	for _, want := range []string{"wal", "reshard"} {
		if sites[want] == 0 {
			t.Errorf("no schedule in the sweep crashed during a %q mutation (saw %v)", want, sites)
		}
	}
}

// TestReshardKillRecoverAbort is the rollback direction: the schedule
// aborts the migration once it has made progress, kills keep landing,
// and the oracle expects the ORIGINAL layout back — same width, same
// generation-0 trees — with every acknowledged write intact and the
// fingerprint matching an offline rebuild at the original width.
func TestReshardKillRecoverAbort(t *testing.T) {
	seeds := []uint64{5, 6}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		// A rollback's life is short — abort fires as soon as the copy has
		// made progress — so the kill window is tightened to land inside it.
		rep, err := RunReshardCrashSchedule(ReshardCrashOptions{
			Seed: seed, Dir: t.TempDir(), From: 2, To: 3, Abort: true, KillWindow: 120,
		})
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, rep)
		}
		t.Logf("%s", rep)
		if !rep.Aborted {
			t.Errorf("seed %d: rollback never completed", seed)
		}
		if rep.FinalShards != 2 || rep.FinalGen != 0 {
			t.Errorf("seed %d: final layout %d shards gen %d, want the original 2 shards gen 0",
				seed, rep.FinalShards, rep.FinalGen)
		}
		if rep.Crashes == 0 {
			t.Errorf("seed %d: schedule never crashed", seed)
		}
	}
}
