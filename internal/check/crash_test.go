package check

import (
	"strings"
	"testing"
)

// TestCrashRecoverySchedules is the acceptance gate for the durability
// contract: a dozen seeded kill-recover schedules, each a few hundred
// ops with crashes injected at seeded mutation counts. Across the run
// both crash phases — mid-WAL-append and mid-snapshot-publish — must
// actually be exercised, and no schedule may lose an acknowledged write.
func TestCrashRecoverySchedules(t *testing.T) {
	opsPer := 300
	seeds := 12
	if testing.Short() {
		opsPer, seeds = 120, 4
	}

	total := &CrashReport{Sites: make(map[string]int)}
	for seed := uint64(1); seed <= uint64(seeds); seed++ {
		rep, err := RunCrashSchedule(t.TempDir(), seed, opsPer)
		if err != nil {
			t.Fatalf("schedule %d: %v (report so far: %v)", seed, err, rep)
		}
		t.Logf("%v", rep)
		total.Crashes += rep.Crashes
		total.AckedWrites += rep.AckedWrites
		total.Replayed += rep.Replayed
		total.TornTails += rep.TornTails
		for site, n := range rep.Sites {
			total.Sites[site] += n
		}
	}

	if total.Crashes == 0 {
		t.Fatal("no crashes were injected; the harness is not testing anything")
	}
	if total.AckedWrites == 0 || total.Replayed == 0 {
		t.Fatalf("degenerate schedules: %d acked writes, %d replayed", total.AckedWrites, total.Replayed)
	}
	if !testing.Short() {
		// Phase coverage: kills must land both in WAL appends/syncs and
		// inside snapshot publishes (write/sync/rename of snap files).
		if total.Sites["wal"] == 0 || total.Sites["snap"] == 0 {
			t.Fatalf("crash phases not covered: sites %v", total.Sites)
		}
		if total.TornTails == 0 {
			t.Fatalf("no torn WAL tail was ever produced: sites %v", total.Sites)
		}
	}
}

// TestCrashScheduleDeterminism locks in that a schedule is a pure
// function of its seed: same seed, same directory history, same report.
func TestCrashScheduleDeterminism(t *testing.T) {
	a, err := RunCrashSchedule(t.TempDir(), 42, 150)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCrashSchedule(t.TempDir(), 42, 150)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("same seed diverged:\n  %v\n  %v", a, b)
	}
	if a.Crashes == 0 {
		t.Fatalf("seed 42 never crashed: %v", a)
	}
}

// TestCrashSiteKind pins the site classifier used for coverage
// accounting.
func TestCrashSiteKind(t *testing.T) {
	cases := map[string]string{
		"write wal-0000000000000003.log": "wal",
		"sync wal-0000000000000003.log":  "wal",
		"write snap-0000000000000002.tmp": "snap",
		"rename snap-0000000000000002.ab": "snap",
		"syncdir data":                    "syncdir",
		"":                                "none",
	}
	for site, want := range cases {
		if got := crashSiteKind(site); got != want {
			t.Errorf("crashSiteKind(%q) = %q, want %q", site, got, want)
		}
	}
	if strings.Contains(crashSiteKind("remove wal-01.log"), " ") {
		t.Error("site kinds must be single tokens")
	}
}
