package check

import (
	"strings"
	"testing"
)

// TestCrashRecoverySchedules is the acceptance gate for the durability
// contract: a dozen seeded kill-recover schedules, each a few hundred
// ops with crashes injected at seeded mutation counts. Across the run
// both crash phases — mid-WAL-append and mid-snapshot-publish — must
// actually be exercised, and no schedule may lose an acknowledged write.
func TestCrashRecoverySchedules(t *testing.T) {
	opsPer := 300
	seeds := 12
	if testing.Short() {
		opsPer, seeds = 120, 4
	}

	total := &CrashReport{Sites: make(map[string]int)}
	for seed := uint64(1); seed <= uint64(seeds); seed++ {
		rep, err := RunCrashSchedule(t.TempDir(), seed, opsPer)
		if err != nil {
			t.Fatalf("schedule %d: %v (report so far: %v)", seed, err, rep)
		}
		t.Logf("%v", rep)
		total.Crashes += rep.Crashes
		total.AckedWrites += rep.AckedWrites
		total.Replayed += rep.Replayed
		total.TornTails += rep.TornTails
		for site, n := range rep.Sites {
			total.Sites[site] += n
		}
	}

	if total.Crashes == 0 {
		t.Fatal("no crashes were injected; the harness is not testing anything")
	}
	if total.AckedWrites == 0 || total.Replayed == 0 {
		t.Fatalf("degenerate schedules: %d acked writes, %d replayed", total.AckedWrites, total.Replayed)
	}
	if !testing.Short() {
		// Phase coverage: kills must land both in WAL appends/syncs and
		// inside snapshot publishes (write/sync/rename of snap files).
		if total.Sites["wal"] == 0 || total.Sites["snap"] == 0 {
			t.Fatalf("crash phases not covered: sites %v", total.Sites)
		}
		if total.TornTails == 0 {
			t.Fatalf("no torn WAL tail was ever produced: sites %v", total.Sites)
		}
	}
}

// TestCrashRecoveryDeltaSchedules runs the same kill-recover oracle
// against the delta-snapshot engine configuration: incremental
// checkpoints chained on periodic full bases plus live-WAL compaction.
// Beyond the zero-acked-loss contract, the run must actually exercise
// the new crash phases — kills inside delta publishes as well as base
// publishes and WAL work — and recoveries must both apply delta chains
// and survive damaged ones.
func TestCrashRecoveryDeltaSchedules(t *testing.T) {
	opsPer := 300
	seeds := 12
	if testing.Short() {
		opsPer, seeds = 120, 4
	}

	total := &CrashReport{Sites: make(map[string]int)}
	for seed := uint64(1); seed <= uint64(seeds); seed++ {
		rep, err := RunCrashScheduleDelta(t.TempDir(), seed, opsPer)
		if err != nil {
			t.Fatalf("delta schedule %d: %v (report so far: %v)", seed, err, rep)
		}
		t.Logf("%v", rep)
		total.Crashes += rep.Crashes
		total.AckedWrites += rep.AckedWrites
		total.Replayed += rep.Replayed
		total.TornTails += rep.TornTails
		total.DeltasApplied += rep.DeltasApplied
		total.DeltasSkipped += rep.DeltasSkipped
		total.DeltasWritten += rep.DeltasWritten
		total.Compactions += rep.Compactions
		for site, n := range rep.Sites {
			total.Sites[site] += n
		}
	}

	if total.Crashes == 0 {
		t.Fatal("no crashes were injected; the harness is not testing anything")
	}
	if total.AckedWrites == 0 || total.Replayed == 0 {
		t.Fatalf("degenerate schedules: %d acked writes, %d replayed", total.AckedWrites, total.Replayed)
	}
	if total.DeltasWritten == 0 {
		t.Fatalf("delta machinery idle: %d deltas written", total.DeltasWritten)
	}
	if total.DeltasApplied == 0 {
		t.Fatal("no recovery ever applied a delta chain; the chain path is untested")
	}
	if !testing.Short() {
		// Phase coverage: kills must land in WAL work (appends, syncs,
		// compaction rewrites), full-base publishes, and delta publishes —
		// and compactions must actually rewrite something (CompactionRuns
		// counts only shrinking runs, which short schedules' few writes
		// per segment rarely produce).
		if total.Compactions == 0 {
			t.Fatal("no compaction ever shrank a segment; the rewrite path is untested")
		}
		if total.Sites["wal"] == 0 || total.Sites["snap"] == 0 || total.Sites["delta"] == 0 {
			t.Fatalf("crash phases not covered: sites %v", total.Sites)
		}
	}
}

// TestCrashScheduleDeterminism locks in that a schedule is a pure
// function of its seed: same seed, same directory history, same report.
func TestCrashScheduleDeterminism(t *testing.T) {
	a, err := RunCrashSchedule(t.TempDir(), 42, 150)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCrashSchedule(t.TempDir(), 42, 150)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("same seed diverged:\n  %v\n  %v", a, b)
	}
	if a.Crashes == 0 {
		t.Fatalf("seed 42 never crashed: %v", a)
	}

	// The delta configuration must be just as pure: synchronous publishes
	// keep the whole schedule a function of the seed.
	da, err := RunCrashScheduleDelta(t.TempDir(), 42, 150)
	if err != nil {
		t.Fatal(err)
	}
	db, err := RunCrashScheduleDelta(t.TempDir(), 42, 150)
	if err != nil {
		t.Fatal(err)
	}
	if da.String() != db.String() {
		t.Fatalf("same delta seed diverged:\n  %v\n  %v", da, db)
	}
}

// TestCrashSiteKind pins the site classifier used for coverage
// accounting.
func TestCrashSiteKind(t *testing.T) {
	cases := map[string]string{
		"write wal-0000000000000003.log":    "wal",
		"sync wal-0000000000000003.log":     "wal",
		"write wal-0000000000000003.tmp":    "wal", // compaction rewrite temp
		"write snap-0000000000000002.tmp":   "snap",
		"rename snap-0000000000000002.ab":   "snap",
		"write delta-0000000000000004.tmp":  "delta",
		"rename delta-0000000000000004.abd": "delta",
		"write reshard.tmp":                 "reshard",
		"rename reshard.tmp reshard.log":    "reshard",
		"syncdir data":                      "syncdir",
		"":                                  "none",
	}
	for site, want := range cases {
		if got := crashSiteKind(site); got != want {
			t.Errorf("crashSiteKind(%q) = %q, want %q", site, got, want)
		}
	}
	if strings.Contains(crashSiteKind("remove wal-01.log"), " ") {
		t.Error("site kinds must be single tokens")
	}
}
