package check

import (
	"testing"

	"repro/aboram"
	"repro/internal/core"
)

// newXORSchemeTarget builds an encrypted aboram oracle target with the XOR
// online fast path enabled — the same construction NewSchemeTarget uses,
// plus the flag under test.
func newXORSchemeTarget(s core.Scheme, levels int, seed uint64) (Target, error) {
	opt := aboram.Options{Scheme: s, Levels: levels, Seed: seed, EncryptionKey: oracleKey, XORRead: true}
	o, err := aboram.New(opt)
	if err != nil {
		return nil, err
	}
	return &aboramTarget{o: o, opt: opt}, nil
}

// TestXORSweepOracle is the acceptance gate for the fast path: the full
// engine-direct oracle — every sweep-shaped geometry, randomized ops,
// checkpoint round trips, final exhaustive sweep — must pass with
// Config.XORRead on. The name is wired into the race-mode smoke in
// check.sh; keep it stable.
func TestXORSweepOracle(t *testing.T) {
	cfgs := SweepConfigs(8, 3, 7)
	for i := range cfgs {
		cfgs[i].Config.XORRead = true
	}
	results, err := RunRingOracle(cfgs, 0x5eed, 150)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Div != nil {
			t.Errorf("%s (xor on) diverged: %s", r.Label, r.Div)
		}
	}
}

// TestXORSchemeOracle drives all five §VII schemes with XORRead enabled
// through the shared randomized workload. Every scheme reads back what the
// plaintext model expects, which also makes the xor-on schemes equivalent
// to their xor-off selves (oracle_test exercises those against the same
// model).
func TestXORSchemeOracle(t *testing.T) {
	for _, s := range core.Schemes() {
		tgt, err := newXORSchemeTarget(s, 8, 3)
		if err != nil {
			t.Fatalf("building %s: %v", s, err)
		}
		ops := GenOps(3, 800, tgt.NumBlocks())
		if d := RunTarget(tgt, ops); d != nil {
			t.Errorf("%s (xor on) diverged: %s", s, d)
		}
	}
}

// TestXORLockstepEquivalence pins the fast path's zero-perturbation
// property: the flag changes how online bytes move, not what the protocol
// does. For every sweep shape, an xor-off and an xor-on instance built from
// the same seed and driven through the same ops must agree with the model
// AND finish with identical protocol statistics — the flag draws no
// randomness of its own, so the two runs stay in RNG lockstep.
func TestXORLockstepEquivalence(t *testing.T) {
	// SweepConfigs is called once per variant: the allocator-backed shape
	// carries a live DeadQ instance that must not be shared across targets.
	off := SweepConfigs(8, 3, 7)
	on := SweepConfigs(8, 3, 7)
	for i := range on {
		on[i].Config.XORRead = true
	}
	for i := range off {
		label := off[i].Label
		toff, err := NewRingTarget(off[i].Config)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		ton, err := NewRingTarget(on[i].Config)
		if err != nil {
			t.Fatalf("%s (xor on): %v", label, err)
		}
		ops := GenOps(0x10c5+uint64(i), 400, toff.NumBlocks())
		if d := RunTarget(toff, ops); d != nil {
			t.Fatalf("%s (xor off) diverged: %s", label, d)
		}
		if d := RunTarget(ton, ops); d != nil {
			t.Fatalf("%s (xor on) diverged: %s", label, d)
		}
		soff := toff.(*ringTarget).o.Stats()
		son := ton.(*ringTarget).o.Stats()
		if son.XORReads == 0 {
			t.Errorf("%s: xor-on run recorded no combined transfers", label)
		}
		if son.BlocksRead >= soff.BlocksRead {
			t.Errorf("%s: xor on read %d blocks, off read %d — the collapse is the whole point",
				label, son.BlocksRead, soff.BlocksRead)
		}
		// Neutralize the fields the flag is expected to move — the combined
		// transfer counts as one BlocksRead where the slow path counted each
		// slot — then demand byte-identical protocol counters.
		soff.XORReads, son.XORReads = 0, 0
		soff.BlocksRead, son.BlocksRead = 0, 0
		if soff != son {
			t.Errorf("%s: xor on/off stats diverged:\n off: %+v\n  on: %+v", label, soff, son)
		}
	}
}

// TestXORRemoteSlotsCovered proves the fast path exercises AB-ORAM's
// remote/guest slot indirection, not just plain in-bucket reads: the
// DeadQ-backed sweep shape under XORRead must both redirect reads to
// remote slots and collapse them into combined transfers.
func TestXORRemoteSlotsCovered(t *testing.T) {
	cfg := SweepConfigs(8, 3, 7)[4] // cb-drRemote
	if cfg.Label != "cb-drRemote" {
		t.Fatalf("sweep shape 4 is %q, want cb-drRemote", cfg.Label)
	}
	cfg.Config.XORRead = true
	tgt, err := NewRingTarget(cfg.Config)
	if err != nil {
		t.Fatal(err)
	}
	ops := GenOps(0xd15c, 800, tgt.NumBlocks())
	if d := RunTarget(tgt, ops); d != nil {
		t.Fatalf("cb-drRemote (xor on) diverged: %s", d)
	}
	st := tgt.(*ringTarget).o.Stats()
	if st.RemoteReads == 0 {
		t.Fatal("workload never hit a remote slot; the shape no longer covers dead-region allocation")
	}
	if st.XORReads == 0 {
		t.Fatal("xor-on run recorded no combined transfers")
	}
}
