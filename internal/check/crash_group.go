package check

import (
	"bytes"
	"fmt"

	"repro/aboram"
	"repro/internal/durable"
	"repro/internal/faults"
	"repro/internal/rng"
	"repro/internal/vfs"
)

// Group-commit kill-recover oracle. The driver plays the scheduler's
// role: it applies writes in batches through Engine.WriteIdentified and
// acknowledges a batch only after Engine.BatchSync returns — exactly the
// deferred-ack protocol internal/server runs under group commit. The
// injected filesystem runs in DropUnsynced mode (a volatile page cache:
// unsynced appends survive a crash only as a seeded prefix), which is
// the failure model that makes group commit's loss window observable.
//
// The contract checked is the same zero-acked-loss rule, generalized to
// multi-write pending sets: after a crash, every batch-synced write must
// survive; each block touched by the unacknowledged batch in flight may
// hold either its pre-batch content or any value that batch wrote to it;
// and the whole schedule must issue strictly fewer fsyncs than writes —
// the amortization group commit exists for.

// GroupReport summarizes one seeded group-commit schedule.
type GroupReport struct {
	Seed        uint64
	Rounds      int
	Crashes     int
	AckedWrites int
	Writes      uint64 // engine-acknowledged appends across all rounds
	Syncs       uint64 // WAL fsyncs across all rounds
	Batched     uint64 // the subset issued by BatchSync
	Dropped     int    // unsynced buffered writes the injector discarded
}

func (r *GroupReport) String() string {
	return fmt.Sprintf("seed %d: %d rounds, %d crashes, %d acked writes, %d syncs (%d batched) for %d appends, %d dropped",
		r.Seed, r.Rounds, r.Crashes, r.AckedWrites, r.Syncs, r.Batched, r.Writes, r.Dropped)
}

// groupOptions is crashOptions with group commit on and the max-delay
// safety net parked out of the way, so sync counts reflect BatchSync
// alone and the test is deterministic under scheduler stalls.
func groupOptions(dir string, seed uint64, fs vfs.FS) durable.Options {
	o := crashOptions(dir, seed, fs, false)
	o.GroupCommit = true
	o.MaxSyncDelay = 1 << 40 // ~18min: never fires inside a test
	return o
}

// RunGroupCommitSchedule runs a seeded schedule of batched writes with
// deferred acknowledgments, crashing under a volatile-page-cache fault
// model, and checks zero acked-write loss plus fsync amortization.
func RunGroupCommitSchedule(dir string, seed uint64, totalOps int) (*GroupReport, error) {
	r := rng.New(seed ^ 0x67726f7570)
	rep := &GroupReport{Seed: seed}

	probe, err := aboram.New(crashOptions(dir, seed, vfs.OS{}, false).ORAM)
	if err != nil {
		return nil, err
	}
	blockB, numBlocks := probe.BlockSize(), probe.NumBlocks()

	model := make(map[int64][]byte)
	// pending is the unacknowledged batch in flight at a crash: per
	// block, the values the batch wrote (recovery may surface the last
	// survivor of any durable prefix, or the pre-batch content).
	var pending map[int64][][]byte
	nextID := uint64(0)
	opsDone := 0
	maxRounds := totalOps + 16
	for opsDone < totalOps {
		if rep.Rounds >= maxRounds {
			return rep, fmt.Errorf("check: group schedule %d made no progress after %d rounds", seed, rep.Rounds)
		}
		rep.Rounds++

		in := faults.New(faults.Config{
			Seed:         r.Uint64(),
			CrashAfter:   1 + int(r.Uint64n(50)),
			TornWrites:   true,
			DropUnsynced: true,
		})
		eng, err := durable.Open(groupOptions(dir, seed, faults.WrapFS(vfs.OS{}, in)))
		if err != nil {
			if !in.Crashed() {
				return rep, fmt.Errorf("check: round %d: recovery failed without a crash: %w", rep.Rounds, err)
			}
			rep.Crashes++
			st := in.Stats()
			rep.Dropped += st.Dropped
			continue
		}

		if err := verifyGroupRecovered(eng, model, &pending, blockB); err != nil {
			eng.Close()
			return rep, fmt.Errorf("check: round %d: %w", rep.Rounds, err)
		}

		crashed := false
		for !crashed && opsDone < totalOps {
			batchN := 1 + int(r.Uint64n(8))
			if batchN > totalOps-opsDone {
				batchN = totalOps - opsDone
			}
			// Apply the batch; acks are deferred until BatchSync.
			batch := make(map[int64][][]byte)
			type bw struct {
				block int64
				data  []byte
			}
			var applied []bw
			for i := 0; i < batchN; i++ {
				block := int64(r.Uint64n(uint64(numBlocks)))
				data := Fill(blockB, block, byte(r.Uint64()))
				nextID++
				opsDone++
				batch[block] = append(batch[block], data)
				if err := eng.WriteIdentified(nextID, block, data); err != nil {
					if !in.Crashed() {
						eng.Close()
						return rep, fmt.Errorf("check: op %d: write failed without a crash: %w", opsDone, err)
					}
					crashed = true
					break
				}
				applied = append(applied, bw{block, data})
			}
			if crashed {
				pending = batch
				break
			}
			if err := eng.BatchSync(); err != nil {
				if !in.Crashed() {
					eng.Close()
					return rep, fmt.Errorf("check: op %d: batch sync failed without a crash: %w", opsDone, err)
				}
				// The whole batch is unacknowledged.
				pending = batch
				crashed = true
				break
			}
			// Acks released: the batch is durable.
			for _, w := range applied {
				model[w.block] = w.data
				rep.AckedWrites++
			}
		}

		st := eng.Stats()
		rep.Writes += st.Writes
		rep.Syncs += st.Syncs
		rep.Batched += st.BatchedSyncs
		eng.Close()
		ist := in.Stats()
		rep.Dropped += ist.Dropped
		if crashed {
			rep.Crashes++
		}
	}

	// Final clean recovery and read-back.
	rep.Rounds++
	eng, err := durable.Open(groupOptions(dir, seed, vfs.OS{}))
	if err != nil {
		return rep, fmt.Errorf("check: final recovery: %w", err)
	}
	defer eng.Close()
	if err := verifyGroupRecovered(eng, model, &pending, blockB); err != nil {
		return rep, fmt.Errorf("check: final recovery: %w", err)
	}
	if rep.AckedWrites > 8 && rep.Syncs >= rep.Writes {
		return rep, fmt.Errorf("check: group commit issued %d syncs for %d appends — no amortization", rep.Syncs, rep.Writes)
	}
	return rep, nil
}

// verifyGroupRecovered checks recovered state under a multi-write
// pending batch: each pending block may hold its pre-batch model content
// or any value the batch wrote to it (recovery keeps the longest durable
// WAL prefix, so any prefix cut is legal); whatever recovery chose is
// pinned into the model. All other blocks must match exactly.
func verifyGroupRecovered(eng *durable.Engine, model map[int64][]byte, pending *map[int64][][]byte, blockB int) error {
	if p := *pending; p != nil {
		for blk, values := range p {
			got, err := eng.Read(blk)
			if err != nil {
				return fmt.Errorf("reading pending block %d: %w", blk, err)
			}
			old := model[blk]
			if old == nil {
				old = make([]byte, blockB)
			}
			ok := bytes.Equal(got, old)
			for _, v := range values {
				if bytes.Equal(got, v) {
					ok = true
				}
			}
			if !ok {
				return fmt.Errorf("pending block %d holds neither its old content nor any batch value", blk)
			}
			if !bytes.Equal(got, make([]byte, blockB)) || model[blk] != nil {
				model[blk] = append([]byte(nil), got...)
			}
		}
		*pending = nil
	}
	for blk, want := range model {
		got, err := eng.Read(blk)
		if err != nil {
			return fmt.Errorf("reading block %d: %w", blk, err)
		}
		if !bytes.Equal(got, want) {
			return fmt.Errorf("acknowledged write to block %d lost or corrupted after recovery", blk)
		}
	}
	return nil
}
