package check

import (
	"bytes"
	"fmt"

	"repro/aboram"
	"repro/internal/core"
	"repro/internal/server"
)

// Sharded differential oracle: the same plaintext-model lockstep the
// unsharded oracle runs, but over a partitioned address space — P
// independent aboram instances behind the serving layer's routing law
// (block b on shard b mod P, shard seeds derived by server.ShardSeed).
// The target mirrors internal/server.Sharded's data plane exactly, so a
// routing bug there has a pure, scheduler-free repro here; and because
// each shard is a full instance with its own Save/Load surface, the
// oracle can additionally prove isolation — an op routed to shard i
// leaves every other shard's state fingerprint unchanged.

// shardTarget is a Target over P independent aboram instances with the
// serving layer's modulo routing. Checkpoint round-trips every shard
// through Save/Load, so checkpoint fidelity is validated per shard.
type shardTarget struct {
	shards []*aboram.ORAM
	opts   []aboram.Options
	per    int64 // blocks per shard
}

// NewShardTarget builds a P-shard oracle target of the given scheme.
// Shard i runs under server.ShardSeed(seed, i), matching what a sharded
// daemon builds from the same base seed.
func NewShardTarget(s core.Scheme, levels, shards int, seed uint64) (Target, error) {
	if shards < 1 {
		return nil, fmt.Errorf("check: shard target needs >= 1 shards, got %d", shards)
	}
	t := &shardTarget{
		shards: make([]*aboram.ORAM, shards),
		opts:   make([]aboram.Options, shards),
	}
	for i := range t.shards {
		opt := aboram.Options{
			Scheme: s, Levels: levels,
			Seed:          server.ShardSeed(seed, i),
			EncryptionKey: oracleKey,
		}
		o, err := aboram.New(opt)
		if err != nil {
			return nil, fmt.Errorf("check: building shard %d: %w", i, err)
		}
		t.shards[i] = o
		t.opts[i] = opt
	}
	t.per = t.shards[0].NumBlocks()
	return t, nil
}

// route maps a global block id onto (shard instance, local id) by the
// serving layer's law. Out-of-domain ids pass through to shard 0 so the
// target reports the same range error an unsharded instance would.
func (t *shardTarget) route(block int64) (*aboram.ORAM, int64) {
	if block < 0 || block >= t.NumBlocks() {
		return t.shards[0], block
	}
	shard, local := server.RouteBlock(block, len(t.shards))
	return t.shards[shard], local
}

func (t *shardTarget) NumBlocks() int64 { return t.per * int64(len(t.shards)) }
func (t *shardTarget) BlockSize() int   { return t.shards[0].BlockSize() }

func (t *shardTarget) Access(block int64) error {
	o, local := t.route(block)
	return o.Access(local)
}

func (t *shardTarget) Read(block int64) ([]byte, error) {
	o, local := t.route(block)
	return o.Read(local)
}

func (t *shardTarget) Write(block int64, data []byte) error {
	o, local := t.route(block)
	return o.Write(local, data)
}

// Checkpoint saves every shard and continues on the restored copies —
// the per-shard analogue of the unsharded target's Save/Load swap.
func (t *shardTarget) Checkpoint() error {
	for i, o := range t.shards {
		var buf bytes.Buffer
		if err := o.Save(&buf); err != nil {
			return fmt.Errorf("shard %d save: %w", i, err)
		}
		restored, err := aboram.Load(t.opts[i], &buf)
		if err != nil {
			return fmt.Errorf("shard %d load: %w", i, err)
		}
		t.shards[i] = restored
	}
	return nil
}

func (t *shardTarget) CheckIntegrity() error {
	for i, o := range t.shards {
		if err := o.CheckIntegrity(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// image fingerprints one shard's complete state; isolation is judged on
// fingerprint equality (Save's gob stream is not canonical, the
// fingerprint is).
func (t *shardTarget) image(shard int) ([32]byte, error) {
	return t.shards[shard].Fingerprint()
}

// RunShardOracle drives a P-shard target through a seeded op sequence
// over the GLOBAL address space against the plaintext model (the same
// GenOps/RunTarget machinery as the unsharded oracle, so read-back,
// checkpoint fidelity, periodic and final integrity all apply per
// shard). It returns the first divergence, nil on a clean run.
func RunShardOracle(s core.Scheme, levels, shards int, seed uint64, n int) (*Divergence, error) {
	t, err := NewShardTarget(s, levels, shards, seed)
	if err != nil {
		return nil, err
	}
	return RunTarget(t, GenOps(seed, n, t.NumBlocks())), nil
}

// CheckShardIsolation proves the routing law confines every op to its
// shard: for each of n seeded ops it fingerprints all P shards, applies
// the op, and requires the P-1 shards the routing law did not name to
// fingerprint identically afterwards. Any drift — a stash spill, an RNG
// draw, a position-map touch on the wrong tree — is reported with the op
// that caused it. Ops that route to a checkpoint are skipped (they
// legitimately touch every shard).
func CheckShardIsolation(s core.Scheme, levels, shards int, seed uint64, n int) error {
	if shards < 2 {
		return fmt.Errorf("check: isolation needs >= 2 shards, got %d", shards)
	}
	ti, err := NewShardTarget(s, levels, shards, seed)
	if err != nil {
		return err
	}
	t := ti.(*shardTarget)
	ops := GenOps(seed, n, t.NumBlocks())
	blockB := t.BlockSize()
	model := make(map[int64][]byte)

	before := make([][32]byte, shards)
	for i, op := range ops {
		if op.Kind == OpCheckpoint {
			if err := t.Checkpoint(); err != nil {
				return fmt.Errorf("check: isolation op %d: %w", i, err)
			}
			continue
		}
		target, _ := server.RouteBlock(op.Block, shards)
		for si := range before {
			if si == target {
				continue
			}
			if before[si], err = t.image(si); err != nil {
				return fmt.Errorf("check: isolation op %d: imaging shard %d: %w", i, si, err)
			}
		}

		var want []byte
		switch op.Kind {
		case OpWrite:
			want = Fill(blockB, op.Block, op.Fill)
		case OpRead:
			want = expect(model, blockB, op.Block)
		}
		if d := applyOp(t, i, op, want); d != nil {
			return fmt.Errorf("check: isolation run diverged: %s", d)
		}
		if op.Kind == OpWrite {
			model[op.Block] = want
		}

		for si := range before {
			if si == target {
				continue
			}
			after, err := t.image(si)
			if err != nil {
				return fmt.Errorf("check: isolation op %d: re-imaging shard %d: %w", i, si, err)
			}
			if before[si] != after {
				return fmt.Errorf("check: op %d (%s) routed to shard %d perturbed shard %d (state fingerprint drifted)",
					i, op, target, si)
			}
		}
	}
	return nil
}
