package check

import (
	"testing"

	"repro/internal/core"
)

// TestObliviousLeafUniformityAllSchemes is the acceptance run behind
// `go test -run Oblivious ./internal/check`: under the most adversarial
// workload (one block touched forever), the leaf revealed by each online
// ReadPath must stay chi-square-uniform for every scheme — dead-block
// reclaim and non-uniform S must not skew the observable pattern.
func TestObliviousLeafUniformityAllSchemes(t *testing.T) {
	for _, s := range core.Schemes() {
		s := s
		t.Run(string(s), func(t *testing.T) {
			t.Parallel()
			opt := core.DefaultOptions(10, 0x0b11)
			res, err := CheckOblivious(s, opt, 20_000, HotBlock(0))
			if err != nil {
				t.Fatal(err)
			}
			if !res.Uniform() {
				t.Errorf("%s leaves skewed: χ²=%.1f > critical %.1f over %d bins",
					s, res.Chi2, res.Critical, res.Bins)
			}
			if res.EvictsChecked == 0 {
				t.Errorf("%s: no EvictPath operations observed", s)
			}
		})
	}
}

// TestObliviousEvictionOrderUniformWorkload verifies the reverse-
// lexicographic eviction schedule holds under a spread-out workload too
// (remote allocation active, different tree size than the uniformity run).
func TestObliviousEvictionOrderUniformWorkload(t *testing.T) {
	opt := core.DefaultOptions(9, 5)
	res, err := CheckOblivious(core.SchemeAB, opt, 6_000, UniformBlocks(5))
	if err != nil {
		t.Fatal(err)
	}
	if res.EvictsChecked < 6_000/10 {
		t.Errorf("only %d evictions checked over %d accesses", res.EvictsChecked, res.Accesses)
	}
	if !res.Uniform() {
		t.Errorf("uniform workload skewed: χ²=%.1f > %.1f", res.Chi2, res.Critical)
	}
}

// TestObliviousChiSquareHasPower guards against a vacuous detector: a
// grossly skewed histogram must exceed the critical value, and the
// Wilson–Hilferty approximation must track the exact quantile.
func TestObliviousChiSquareHasPower(t *testing.T) {
	skewed := make([]uint64, 64)
	for i := range skewed {
		skewed[i] = 10
	}
	skewed[0] = 400
	stat, df := ChiSquare(skewed)
	if crit := ChiSquareCritical(df, ZCrit999); stat <= crit {
		t.Errorf("skewed histogram accepted: χ²=%.1f <= %.1f", stat, crit)
	}
	flat := make([]uint64, 64)
	for i := range flat {
		flat[i] = 100
	}
	if stat, df := ChiSquare(flat); stat > ChiSquareCritical(df, ZCrit999) {
		t.Errorf("perfectly flat histogram rejected: χ²=%.1f", stat)
	}
	// Exact χ²(100) upper 0.001 quantile is 149.449.
	if c := ChiSquareCritical(100, ZCrit999); c < 148 || c > 151 {
		t.Errorf("critical value approximation off: got %.2f, want ≈149.45", c)
	}
	if stat, df := ChiSquare(nil); stat != 0 || df != 0 {
		t.Errorf("degenerate input not neutral: %v %v", stat, df)
	}
}

func TestBinLeaves(t *testing.T) {
	cases := []struct {
		paths    uint64
		accesses int
		bins     uint64
		shift    uint
	}{
		{512, 20_000, 512, 0},      // enough samples: one bin per path
		{512, 1_000, 64, 3},        // few samples: fold 8 paths per bin
		{1 << 15, 20_000, 1024, 5}, // big tree: capped at 1024 bins
		{512, 10, 2, 8},            // pathological: still two bins
	}
	for _, c := range cases {
		bins, shift := binLeaves(c.paths, c.accesses)
		if bins != c.bins || shift != c.shift {
			t.Errorf("binLeaves(%d, %d) = (%d, %d), want (%d, %d)",
				c.paths, c.accesses, bins, shift, c.bins, c.shift)
		}
	}
}
