package check

import "math"

// ZCrit999 is the upper standard-normal quantile for α = 0.001. The
// obliviousness tests use a conservative significance level because every
// run is deterministic: a statistic past this bound is a real skew, not
// sampling noise to be retried away.
const ZCrit999 = 3.0902

// ChiSquare returns Pearson's chi-square statistic of the observed counts
// against a uniform expectation, plus the degrees of freedom. A total of
// zero or fewer than two cells yields (0, 0), which Uniform treats as a
// degenerate pass.
func ChiSquare(counts []uint64) (stat float64, df int) {
	if len(counts) < 2 {
		return 0, 0
	}
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0, 0
	}
	expected := float64(total) / float64(len(counts))
	for _, c := range counts {
		d := float64(c) - expected
		stat += d * d / expected
	}
	return stat, len(counts) - 1
}

// ChiSquareExpected returns Pearson's chi-square statistic of the
// observed counts against an arbitrary expected distribution (absolute
// expected counts, same length), plus the degrees of freedom over the
// cells with nonzero expectation. An observation in a cell the
// expectation rules out entirely is an unconditional violation and
// yields +Inf. Fewer than two live cells yields (0, 0), the degenerate
// pass.
func ChiSquareExpected(counts []uint64, expected []float64) (stat float64, df int) {
	n := len(counts)
	if len(expected) < n {
		n = len(expected)
	}
	live := 0
	for i := 0; i < n; i++ {
		if expected[i] <= 0 {
			if counts[i] > 0 {
				return math.Inf(1), 0
			}
			continue
		}
		live++
		d := float64(counts[i]) - expected[i]
		stat += d * d / expected[i]
	}
	if live < 2 {
		return 0, 0
	}
	return stat, live - 1
}

// ChiSquareCritical returns the upper critical value of the chi-square
// distribution with df degrees of freedom at the significance level whose
// standard-normal quantile is z, via the Wilson–Hilferty cube
// approximation — accurate to a fraction of a percent for df >= 3, which
// covers every leaf-histogram size the checker produces.
func ChiSquareCritical(df int, z float64) float64 {
	if df <= 0 {
		return 0
	}
	k := float64(df)
	t := 1 - 2/(9*k) + z*math.Sqrt(2/(9*k))
	return k * t * t * t
}
