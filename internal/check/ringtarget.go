package check

import (
	"bytes"
	"fmt"

	"repro/internal/core"
	"repro/internal/ringoram"
	"repro/internal/secmem"
)

// This file is the engine-direct oracle variant: where NewSchemeTarget
// exercises the aboram facade (and therefore only the five §VII scheme
// shapes core.Build produces), NewRingTarget drives ringoram.ORAM
// directly, so the oracle can cover sweep-shaped configurations — the
// non-default Z'/S/A geometries the parameter sweeps explore but the
// facade never constructs.

// RingConfig names one raw engine configuration for the sweep oracle.
type RingConfig struct {
	Label  string
	Config ringoram.Config
}

// ringTarget adapts a bare engine instance (plus an encrypted secmem data
// plane, wired here exactly as the facade wires it) to the Target
// interface.
type ringTarget struct {
	o   *ringoram.ORAM
	cfg ringoram.Config
}

// NewRingTarget attaches an encrypted data plane to a raw engine
// configuration and returns it as an oracle target. The caller's cfg.Data
// is overwritten; cfg.Allocator is used as given (nil for allocator-free
// shapes).
func NewRingTarget(cfg ringoram.Config) (Target, error) {
	// The data plane must cover every physical slot, mirroring aboram.New.
	slots := int64(ringoram.SpaceBytesStatic(cfg)) / int64(cfg.BlockB)
	mem, err := secmem.New(slots, cfg.BlockB, oracleKey)
	if err != nil {
		return nil, err
	}
	cfg.Data = mem
	o, err := ringoram.New(cfg)
	if err != nil {
		return nil, err
	}
	return &ringTarget{o: o, cfg: cfg}, nil
}

func (t *ringTarget) NumBlocks() int64 { return t.cfg.NumBlocks }
func (t *ringTarget) BlockSize() int   { return t.cfg.BlockB }

func (t *ringTarget) Access(block int64) error {
	_, err := t.o.Access(block)
	return err
}

func (t *ringTarget) Read(block int64) ([]byte, error) {
	data, _, err := t.o.ReadBlock(block)
	return data, err
}

func (t *ringTarget) Write(block int64, data []byte) error {
	_, err := t.o.WriteBlock(block, data)
	return err
}

func (t *ringTarget) CheckIntegrity() error { return t.o.CheckInvariants() }

// Checkpoint round-trips the engine through Save/Load and continues on the
// restored copy. The same cfg — and therefore the same live secmem data
// plane and allocator instances — backs the restored engine: their state
// at the save point is exactly what the checkpoint references, since no
// operations run between Save and Load.
func (t *ringTarget) Checkpoint() error {
	var buf bytes.Buffer
	if err := t.o.Save(&buf); err != nil {
		return err
	}
	o, err := ringoram.Load(t.cfg, &buf)
	if err != nil {
		return err
	}
	t.o = o
	return nil
}

// SweepConfigs returns the sweep-shaped engine geometries the ring oracle
// covers: classic Ring ORAM knobs the §VII schemes never use (S=7/A=5,
// S=9/A=8), per-level Z' reduction, bottom-level S shrink, and a
// remote-allocation shape backed by a real DeadQ. levels must be >= 7 so
// the allocator shape can track its six bottom levels.
func SweepConfigs(levels, treetop int, seed uint64) []RingConfig {
	ring := ringoram.TypicalRing(levels, treetop, seed)

	wideRing := ringoram.TypicalRing(levels, treetop, seed)
	wideRing.S = 9
	wideRing.A = 8

	ir := ringoram.CompactedBaseline(levels, treetop, seed)
	ir.Y = 3
	ir.ZPrimePerLevel = map[int]int{2: 4}

	ns := ringoram.CompactedBaseline(levels, treetop, seed)
	ns.SPerLevel = map[int]int{levels - 2: 1, levels - 1: 1}

	dr := ringoram.CompactedBaseline(levels, treetop, seed)
	dr.SPerLevel = map[int]int{}
	dr.STargetPerLevel = map[int]int{}
	for l := levels - 6; l <= levels-1; l++ {
		dr.SPerLevel[l] = 1
		dr.STargetPerLevel[l] = 3
	}
	dr.Allocator = core.MustNewDeadQ(levels-6, levels-1, 64)
	dr.MaxRemote = 6

	return []RingConfig{
		{"ring-Z5-S7-A5", ring},
		{"ring-S9-A8", wideRing},
		{"cb-Y3-irZ4", ir},
		{"cb-nsBottomS1", ns},
		{"cb-drRemote", dr},
	}
}

// RingResult is one configuration's outcome from RunRingOracle.
type RingResult struct {
	Label string
	Ops   int // ops applied before divergence (or all of them)
	Div   *Divergence
}

// RunRingOracle drives each configuration through its own seeded op
// sequence against the plaintext model. Configurations run independently
// (their geometries differ, so there is no lockstep sharing); the error
// reports the first diverging configuration.
func RunRingOracle(cfgs []RingConfig, seed uint64, n int) ([]RingResult, error) {
	results := make([]RingResult, 0, len(cfgs))
	var firstErr error
	for _, rc := range cfgs {
		t, err := NewRingTarget(rc.Config)
		if err != nil {
			return nil, fmt.Errorf("check: building %s: %w", rc.Label, err)
		}
		ops := GenOps(seed, n, t.NumBlocks())
		div := RunTarget(t, ops)
		r := RingResult{Label: rc.Label, Ops: len(ops), Div: div}
		if div != nil {
			r.Ops = div.OpIndex
			if firstErr == nil {
				firstErr = fmt.Errorf("check: engine config %s diverged at %s", rc.Label, div)
			}
		}
		results = append(results, r)
	}
	return results, firstErr
}
