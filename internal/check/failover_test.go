package check

import (
	"strings"
	"testing"
)

// TestFailoverSmoke is the short race-gated arm of the failover oracle:
// a few seeds through both engine configurations. The full sweep with
// kill-site coverage assertions is TestFailoverSchedules.
func TestFailoverSmoke(t *testing.T) {
	for _, delta := range []bool{false, true} {
		rep, err := RunFailoverSchedule(t.TempDir(), 1, 60, FailoverOptions{Delta: delta})
		if err != nil {
			t.Fatalf("delta=%v: %v\n%s", delta, err, rep)
		}
		if rep.AckedWrites == 0 || rep.Kills == 0 {
			t.Fatalf("delta=%v: schedule exercised nothing: %s", delta, rep)
		}
		t.Logf("delta=%v: %s", delta, rep)
	}
}

// TestFailoverSchedules sweeps seeds and asserts the kill-site coverage
// the oracle exists for: kills must land on the primary's own disk, on
// frames mid-send (WAL batches and snapshot chunks), and on acks — and
// at least one schedule must promote and fence the deposed primary.
func TestFailoverSchedules(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep")
	}
	sites := make(map[string]int)
	var promoted, fenced, acked int
	for seed := uint64(1); seed <= 10; seed++ {
		rep, err := RunFailoverSchedule(t.TempDir(), seed, 90, FailoverOptions{Delta: seed%2 == 0})
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, rep)
		}
		for k, n := range rep.KillSites {
			sites[k] += n
		}
		if rep.Promoted {
			promoted++
			if rep.FenceOK {
				fenced++
			}
		}
		acked += rep.AckedWrites
		t.Logf("seed %d: %s", seed, rep)
	}
	t.Logf("kill sites across seeds: %v (%d acked writes, %d promotions, %d fenced)", sites, acked, promoted, fenced)
	var sawWAL, sawFrame, sawAck, sawChunk bool
	for k := range sites {
		sawWAL = sawWAL || k == "wal" || k == "snap" || k == "delta"
		sawFrame = sawFrame || strings.HasPrefix(k, "frame:")
		sawAck = sawAck || strings.HasPrefix(k, "ack:")
		sawChunk = sawChunk || k == "frame:snap-chunk" || k == "ack:snap-chunk" ||
			strings.Contains(k, "chunk")
	}
	if !sawWAL || !sawFrame || !sawAck {
		t.Fatalf("kill-site coverage incomplete: %v", sites)
	}
	if !sawChunk {
		t.Fatalf("no schedule killed mid-snapshot-chunk: %v", sites)
	}
	if promoted == 0 || fenced != promoted {
		t.Fatalf("want every promotion fenced: %d promotions, %d fenced", promoted, fenced)
	}
}

// TestFailoverNegativeControl disables term fencing and demands the
// oracle fire: the deposed primary's stale stream must destroy
// post-promotion acknowledged state, and RunFailoverSchedule must see
// it. If this test fails, the oracle has gone blind.
func TestFailoverNegativeControl(t *testing.T) {
	fired := false
	for seed := uint64(1); seed <= 6 && !fired; seed++ {
		rep, err := RunFailoverSchedule(t.TempDir(), seed, 60, FailoverOptions{FenceOff: true})
		if err != nil && rep != nil && rep.Promoted {
			fired = true
			t.Logf("seed %d: oracle fired as required: %v", seed, err)
		}
	}
	if !fired {
		t.Fatal("fencing disabled, yet no schedule lost post-promotion state: the oracle cannot detect split brain")
	}
}
