package check

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"time"

	"repro/aboram"
	"repro/internal/durable"
	"repro/internal/faults"
	"repro/internal/rng"
	"repro/internal/server/wire"
	"repro/internal/vfs"
)

// This file is the failover kill-recover oracle: the replication
// analogue of the crash oracle in crash.go. A primary engine runs a
// seeded op schedule while shipping every durability event to a
// persistent replica directory through the real frame codec, in
// semi-sync mode (a write is acknowledged only after the replica has
// fsynced it). Seeded kills land in three different places:
//
//   - in the primary's filesystem (mid-WAL-append, mid-publish — the
//     crash oracle's kill, with replication attached),
//   - on the replication link before a frame is applied (the primary
//     dies mid-send: mid-WAL-batch or mid-snapshot-chunk),
//   - on the link after the frame is applied but before its ack returns
//     (the primary dies mid-ack).
//
// After the schedule's final kill the replica is promoted — durable.Open
// over the mirror directory plus a term bump — and the contract checked:
//
//   - every client-acknowledged write reads back exactly, always;
//   - the single op in flight at a kill (never acknowledged: the engine
//     died mid-send or mid-ack, so no response reached a client) may
//     hold either its old or its new content, but nothing else;
//   - after promotion, the deposed primary's attempt to re-attach and
//     ship its stale stream is refused by term fencing, and every
//     post-promotion acknowledged write survives the attempt.
//
// The negative control (FenceOff) disables fencing on the promoted
// directory's mirror; the deposed primary's bootstrap then wipes the
// promoted state, post-promotion writes vanish, and RunFailoverSchedule
// must return the data-loss error — proving the fence is what holds the
// split-brain line, and that the oracle can see it fall.

// FailoverOptions selects the engine configuration and the control arm.
type FailoverOptions struct {
	// Delta runs the delta-snapshot engine configuration (chained
	// incremental checkpoints plus live-WAL compaction).
	Delta bool
	// FenceOff is the negative control: the promoted directory accepts
	// the deposed primary's stale stream, and the schedule must FAIL.
	FenceOff bool
}

// FailoverReport summarizes one seeded failover schedule.
type FailoverReport struct {
	Seed        uint64
	Rounds      int            // primary incarnations
	Kills       int            // seeded kills (fs, frame, or ack)
	KillSites   map[string]int // histogram: wal/snap/delta buckets, frame:<kind>, ack:<kind>, clean
	AckedWrites int            // client-acknowledged writes across all rounds
	Promoted    bool           // the replica was promotable (booted) at the final kill
	PromoteTerm uint64         // fencing term the promotion installed
	FenceOK     bool           // deposed primary's re-attach was refused
}

func (r *FailoverReport) String() string {
	return fmt.Sprintf("seed %d: %d rounds, %d kills (sites %v), %d acked writes, promoted=%v term=%d fenceOK=%v",
		r.Seed, r.Rounds, r.Kills, r.KillSites, r.AckedWrites, r.Promoted, r.PromoteTerm, r.FenceOK)
}

// errLinkDead is what the oracle sink returns once its seeded kill has
// fired: the primary process is considered dead at that instant.
var errLinkDead = errors.New("check: replication link killed")

// oracleSink applies shipped frames to a mirror through the real codec,
// acking synchronously, with one seeded kill: after killAfter frames it
// fails — either dropping the frame before it applies (the primary died
// mid-send) or applying and fsyncing it but failing the ack (the
// primary died mid-ack).
type oracleSink struct {
	m         *durable.Mirror
	s         *durable.Shipper
	killAfter int  // frames before the kill; 0 = healthy link
	ackKill   bool // kill lands after apply, before ack
	n         int
	fired     bool
	firedKind string
}

func (os *oracleSink) SendFrame(f wire.ReplFrame) error {
	if os.fired {
		return errLinkDead
	}
	body, err := wire.AppendReplFrame(nil, f)
	if err != nil {
		return err
	}
	g, err := wire.DecodeReplFrame(body)
	if err != nil {
		return err
	}
	if os.killAfter > 0 && os.n+1 >= os.killAfter {
		os.fired = true
		if os.ackKill {
			os.firedKind = "ack:" + g.Kind.String()
			os.m.Apply(g) // applied and fsynced; the ack never arrives
		} else {
			os.firedKind = "frame:" + g.Kind.String()
		}
		return errLinkDead
	}
	os.n++
	if err := os.m.Apply(g); err != nil {
		os.fired = true
		os.firedKind = "apply-error"
		return err
	}
	switch g.Kind {
	case wire.ReplWALBatch, wire.ReplBootDone, wire.ReplHeartbeat:
		os.s.Ack(os.m.Seq())
	}
	return nil
}

// RunFailoverSchedule runs one seeded schedule of totalOps operations:
// primary incarnations under pdir replicate to rdir and die at seeded
// kill points; the final state of rdir is promoted and verified. dir
// layout: <dir>/primary and <dir>/replica.
func RunFailoverSchedule(dir string, seed uint64, totalOps int, opt FailoverOptions) (*FailoverReport, error) {
	r := rng.New(seed ^ 0xfa110f37) // decorrelate from the engine's streams
	rep := &FailoverReport{Seed: seed, KillSites: make(map[string]int)}
	pdir, rdir := filepath.Join(dir, "primary"), filepath.Join(dir, "replica")

	probe, err := aboram.New(aboram.Options{Levels: 8, Seed: seed, EncryptionKey: oracleKey})
	if err != nil {
		return nil, err
	}
	numBlocks, blockB := probe.NumBlocks(), probe.BlockSize()
	ops := GenOps(seed, totalOps, numBlocks)

	model := make(map[int64][]byte)
	var pending *pendingWrite
	next := 0
	lastBooted := false

	maxRounds := totalOps + 16
	for next < len(ops) {
		if rep.Rounds >= maxRounds {
			return rep, fmt.Errorf("check: failover schedule %d made no progress after %d rounds", seed, rep.Rounds)
		}
		rep.Rounds++

		// One seeded kill per round: a filesystem crash on the primary, a
		// dropped frame, or a dropped ack.
		var in *faults.Injector
		ship := &durable.Shipper{Shard: 0, SemiSync: true, AckTimeout: 10 * time.Millisecond, ChunkBytes: 2 << 10}
		sink := &oracleSink{s: ship}
		switch r.Uint64n(3) {
		case 0: // fs kill
			in = faults.New(faults.Config{Seed: r.Uint64(), CrashAfter: 1 + int(r.Uint64n(60)), TornWrites: true})
		case 1: // frame kill (mid-send)
			in = faults.New(faults.Config{Seed: r.Uint64()})
			sink.killAfter = 1 + int(r.Uint64n(80))
		default: // ack kill (applied, unacknowledged)
			in = faults.New(faults.Config{Seed: r.Uint64()})
			sink.killAfter = 1 + int(r.Uint64n(80))
			sink.ackKill = true
		}

		engOpt := crashOptions(pdir, seed, faults.WrapFS(vfs.OS{}, in), opt.Delta)
		engOpt.Ship = ship
		eng, err := durable.Open(engOpt)
		if err != nil {
			if !in.Crashed() {
				return rep, fmt.Errorf("check: round %d: recovery failed without a crash: %w", rep.Rounds, err)
			}
			rep.Kills++
			rep.KillSites[crashSiteKind(in.CrashSite())]++
			continue
		}
		if err := verifyRecovered(eng, model, &pending, blockB); err != nil {
			eng.Close()
			return rep, fmt.Errorf("check: round %d primary recovery: %w", rep.Rounds, err)
		}
		m, err := durable.NewMirror(rdir, durable.MirrorOptions{Shard: 0})
		if err != nil {
			eng.Close()
			return rep, err
		}
		sink.m = m
		ship.Attach(sink)

		killed := false
		for next < len(ops) {
			op := ops[next]
			firedBefore := sink.fired
			var opErr error
			var newData []byte
			switch op.Kind {
			case OpWrite:
				newData = Fill(blockB, op.Block, op.Fill)
				opErr = eng.Write(op.Block, newData)
			case OpRead:
				var got []byte
				got, opErr = eng.Read(op.Block)
				if opErr == nil {
					if want := expect(model, blockB, op.Block); !bytes.Equal(got, want) {
						eng.Close()
						m.Close()
						return rep, fmt.Errorf("check: op %d: read(%d) diverged from model pre-kill", next, op.Block)
					}
				}
			default:
				opErr = eng.Access(op.Block)
			}
			linkFired := sink.fired && !firedBefore
			if opErr != nil && !in.Crashed() && !sink.fired {
				eng.Close()
				m.Close()
				return rep, fmt.Errorf("check: op %d failed without a kill: %w", next, opErr)
			}
			if opErr != nil || linkFired {
				// The primary died inside this op (its own disk, mid-send,
				// or mid-ack): no response reached a client, so recovery and
				// promotion may surface either value.
				if op.Kind == OpWrite {
					pending = &pendingWrite{block: op.Block, old: model[op.Block], new: newData}
				}
				next++
				killed = true
				break
			}
			if op.Kind == OpWrite {
				model[op.Block] = newData
				rep.AckedWrites++
			}
			next++
		}
		if killed {
			rep.Kills++
			switch {
			case sink.fired:
				rep.KillSites[sink.firedKind]++
			default:
				rep.KillSites[crashSiteKind(in.CrashSite())]++
			}
		} else {
			// Op budget spent with the link healthy: the final kill is an
			// abrupt but quiescent death (everything acked is shipped).
			rep.KillSites["clean"]++
		}
		eng.Close()
		// A booted mirror is promotable no matter how the link died: a
		// dropped frame was never applied (in-flight assembly is
		// in-memory only) and a dropped ack was applied and fsynced.
		lastBooted = m.Booted()
		m.Close()
	}

	// Failover: promote the replica if its mirror was promotable at the
	// final kill; otherwise (died mid-bootstrap) the only copy is the
	// primary's own directory — recover that instead.
	rep.Promoted = lastBooted
	srcOpt := crashOptions(rdir, seed, vfs.OS{}, opt.Delta)
	if !rep.Promoted {
		srcOpt = crashOptions(pdir, seed, vfs.OS{}, opt.Delta)
	}
	prom, err := durable.Open(srcOpt)
	if err != nil {
		return rep, fmt.Errorf("check: promotion recovery: %w", err)
	}
	if err := verifyRecovered(prom, model, &pending, blockB); err != nil {
		prom.Close()
		if rep.Promoted {
			return rep, fmt.Errorf("check: promoted replica: %w", err)
		}
		return rep, fmt.Errorf("check: primary-only recovery: %w", err)
	}
	if !rep.Promoted {
		prom.Close()
		return rep, nil
	}
	rep.PromoteTerm = prom.Term() + 1
	if err := prom.SetTerm(rep.PromoteTerm); err != nil {
		prom.Close()
		return rep, err
	}

	// Post-promotion writes: these are acknowledged by the new primary
	// and must survive the deposed primary's re-attach attempt below.
	postModel := make(map[int64][]byte)
	for i := 0; i < 8; i++ {
		blk := int64(r.Uint64n(uint64(numBlocks)))
		data := Fill(blockB, blk, 0xD0+byte(i))
		if err := prom.Write(blk, data); err != nil {
			prom.Close()
			return rep, fmt.Errorf("check: post-promotion write: %w", err)
		}
		postModel[blk] = data
		model[blk] = data
	}
	if err := prom.Close(); err != nil {
		return rep, fmt.Errorf("check: closing promoted engine: %w", err)
	}

	// The deposed primary comes back and tries to resume shipping its
	// stale stream into the promoted directory.
	depShip := &durable.Shipper{Shard: 0, ChunkBytes: 2 << 10}
	depOpt := crashOptions(pdir, seed, vfs.OS{}, opt.Delta)
	depOpt.Ship = depShip
	dep, err := durable.Open(depOpt)
	if err != nil {
		return rep, fmt.Errorf("check: deposed primary recovery: %w", err)
	}
	dm, err := durable.NewMirror(rdir, durable.MirrorOptions{Shard: 0, FenceOff: opt.FenceOff})
	if err != nil {
		dep.Close()
		return rep, err
	}
	depSink := &oracleSink{m: dm, s: depShip}
	depShip.Attach(depSink)
	// A couple of ops service the attach (and, if the fence is off, let
	// the stale bootstrap finish wiping and rewriting the directory).
	for i := 0; i < 4; i++ {
		dep.Access(int64(i) % numBlocks)
	}
	st := depShip.Stats()
	dep.Close()
	dm.Close()
	rep.FenceOK = !st.Attached && st.SendErrors > 0 && st.Boots == 0

	// Reopen the promoted directory: the term must still be the promoted
	// one and every acknowledged write — including the post-promotion
	// ones — must read back. Under FenceOff this is where the oracle
	// fires.
	fin, err := durable.Open(crashOptions(rdir, seed, vfs.OS{}, opt.Delta))
	if err != nil {
		return rep, fmt.Errorf("check: reopening promoted dir: %w", err)
	}
	defer fin.Close()
	if got := fin.Term(); got != rep.PromoteTerm {
		return rep, fmt.Errorf("check: promoted term regressed: %d, want %d (deposed primary overwrote the promoted store)", got, rep.PromoteTerm)
	}
	for blk, want := range postModel {
		got, err := fin.Read(blk)
		if err != nil {
			return rep, fmt.Errorf("check: reading post-promotion block %d: %w", blk, err)
		}
		if !bytes.Equal(got, want) {
			return rep, fmt.Errorf("check: post-promotion acknowledged write to block %d destroyed by the deposed primary", blk)
		}
	}
	var noPending *pendingWrite
	if err := verifyRecovered(fin, model, &noPending, blockB); err != nil {
		return rep, fmt.Errorf("check: promoted store after deposed re-attach: %w", err)
	}
	if !rep.FenceOK && !opt.FenceOff {
		return rep, fmt.Errorf("check: deposed primary was not fenced: %+v", st)
	}
	return rep, nil
}
