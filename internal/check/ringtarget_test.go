package check

import (
	"strings"
	"testing"

	"repro/internal/ringoram"
)

// TestRingOracleSweepConfigs runs the engine-direct oracle over every
// sweep-shaped configuration; all of them must survive the randomized
// workload plus checkpoint round trips and the final exhaustive sweep.
func TestRingOracleSweepConfigs(t *testing.T) {
	cfgs := SweepConfigs(8, 3, 7)
	if len(cfgs) != 5 {
		t.Fatalf("SweepConfigs returned %d shapes, want 5", len(cfgs))
	}
	results, err := RunRingOracle(cfgs, 0x5eed, 150)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Div != nil {
			t.Errorf("%s diverged: %s", r.Label, r.Div)
		}
		if r.Ops != 150 {
			t.Errorf("%s applied %d ops, want 150", r.Label, r.Ops)
		}
	}
}

// TestRingTargetCheckpointRoundTrip pins the Save/Load path: content
// written before a checkpoint must read back identically on the restored
// engine, including on the allocator-backed shape whose checkpoint carries
// live remote-slot references.
func TestRingTargetCheckpointRoundTrip(t *testing.T) {
	for _, rc := range SweepConfigs(8, 3, 11) {
		tgt, err := NewRingTarget(rc.Config)
		if err != nil {
			t.Fatalf("%s: %v", rc.Label, err)
		}
		ops := []Op{
			{Kind: OpWrite, Block: 3, Fill: 0xAA},
			{Kind: OpWrite, Block: 200, Fill: 0x5C},
			{Kind: OpCheckpoint},
			{Kind: OpRead, Block: 3},
			{Kind: OpWrite, Block: 3, Fill: 0x17},
			{Kind: OpCheckpoint},
			{Kind: OpRead, Block: 3},
			{Kind: OpRead, Block: 200},
		}
		if d := RunTarget(tgt, ops); d != nil {
			t.Errorf("%s: checkpoint round trip diverged: %s", rc.Label, d)
		}
	}
}

// flipReadTarget corrupts the first byte of every read — the canary
// proving the oracle actually validates payloads through the engine-direct
// path rather than vacuously passing.
type flipReadTarget struct {
	Target
}

func (f flipReadTarget) Read(block int64) ([]byte, error) {
	d, err := f.Target.Read(block)
	if err == nil && len(d) > 0 {
		d[0] ^= 0x01
	}
	return d, err
}

func TestRingOracleDetectsCorruption(t *testing.T) {
	cfg := SweepConfigs(8, 3, 7)[0].Config
	tgt, err := NewRingTarget(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ops := []Op{
		{Kind: OpWrite, Block: 1, Fill: 0x42},
		{Kind: OpRead, Block: 1},
	}
	d := RunTarget(flipReadTarget{tgt}, ops)
	if d == nil {
		t.Fatal("oracle missed a corrupted read")
	}
	if !strings.Contains(d.Detail, "mismatch") {
		t.Fatalf("unexpected divergence detail: %s", d.Detail)
	}
}

// TestRingTargetRejectsBadConfig checks construction errors surface
// instead of panicking.
func TestRingTargetRejectsBadConfig(t *testing.T) {
	cfg := ringoram.TypicalRing(8, 3, 1)
	cfg.ZPrime = 0 // invalid: no real-block slots
	if _, err := NewRingTarget(cfg); err == nil {
		t.Fatal("expected an error for an invalid configuration")
	}
}
