package check

import (
	"testing"

	"repro/internal/core"
)

func TestGenOpsDeterministic(t *testing.T) {
	a := GenOps(42, 500, 637)
	b := GenOps(42, 500, 637)
	if len(a) != 500 || len(b) != 500 {
		t.Fatalf("wrong lengths: %d %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs between identical seeds: %s vs %s", i, a[i], b[i])
		}
	}
	c := GenOps(43, 500, 637)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical sequences")
	}
	kinds := map[OpKind]int{}
	for _, op := range GenOps(7, 5000, 637) {
		kinds[op.Kind]++
		if op.Block < 0 || op.Block >= 637 {
			t.Fatalf("block %d out of range", op.Block)
		}
	}
	for _, k := range []OpKind{OpWrite, OpRead, OpAccess, OpCheckpoint} {
		if kinds[k] == 0 {
			t.Errorf("kind %s never generated", k)
		}
	}
}

// TestOracleTenThousandOpsPerScheme is the acceptance run: ≥ 10k
// randomized ops per scheme, including checkpoint round trips, with zero
// divergences from the plaintext model.
func TestOracleTenThousandOpsPerScheme(t *testing.T) {
	const (
		levels = 8
		seed   = 0xab02
		n      = 10_000
	)
	for _, s := range core.Schemes() {
		s := s
		t.Run(string(s), func(t *testing.T) {
			t.Parallel()
			tgt, err := NewSchemeTarget(s, levels, seed)
			if err != nil {
				t.Fatal(err)
			}
			ops := GenOps(seed, n, tgt.NumBlocks())
			if d := RunTarget(tgt, ops); d != nil {
				t.Fatalf("scheme %s diverged: %s — replay with check.Replay(%q, %d, %#x, GenOps(%#x, %d, %d))",
					s, d, s, levels, uint64(seed), uint64(seed), n, tgt.NumBlocks())
			}
		})
	}
}

// TestRunOracleLockstep exercises the real lockstep entry point: one op
// stream, one shared model, all five schemes advancing together.
func TestRunOracleLockstep(t *testing.T) {
	results, err := RunOracle(8, 3, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(core.Schemes()) {
		t.Fatalf("got %d results, want %d", len(results), len(core.Schemes()))
	}
	for _, r := range results {
		if r.Failure != nil {
			t.Errorf("%s: %v", r.Scheme, r.Failure)
		}
		if r.Ops != 1500 {
			t.Errorf("%s applied %d ops, want 1500", r.Scheme, r.Ops)
		}
	}
}

// corruptTarget flips a payload byte on reads of every third block once
// enough reads have happened — a silent-corruption fault the oracle must
// catch and the minimizer must preserve while shrinking.
type corruptTarget struct {
	Target
	reads int
}

func (c *corruptTarget) Read(block int64) ([]byte, error) {
	d, err := c.Target.Read(block)
	c.reads++
	if err == nil && c.reads > 50 && block%3 == 0 && len(d) > 0 {
		d[0] ^= 0xff
	}
	return d, err
}

func TestOracleDetectsCorruptionAndMinimizes(t *testing.T) {
	mk := func() (Target, error) {
		tgt, err := NewSchemeTarget(core.SchemeAB, 8, 7)
		if err != nil {
			return nil, err
		}
		return &corruptTarget{Target: tgt}, nil
	}
	tgt, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	ops := GenOps(7, 3000, tgt.NumBlocks())
	div := RunTarget(tgt, ops)
	if div == nil {
		t.Fatal("oracle missed injected read corruption")
	}
	repro := Minimize(mk, ops, div, 300)
	if len(repro) == 0 || len(repro) >= len(ops) {
		t.Fatalf("minimizer produced %d ops from %d", len(repro), len(ops))
	}
	replay, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	if RunTarget(replay, repro) == nil {
		t.Fatal("minimized repro no longer fails")
	}
	f := &Failure{Scheme: core.SchemeAB, Levels: 8, Seed: 7, Div: *div, Repro: repro}
	if f.Error() == "" {
		t.Fatal("failure renders empty")
	}
}

func TestReplayCleanSequence(t *testing.T) {
	ops := GenOps(11, 400, 637)
	div, err := Replay(core.SchemeDR, 8, 11, ops)
	if err != nil {
		t.Fatal(err)
	}
	if div != nil {
		t.Fatalf("clean sequence diverged: %s", div)
	}
}
