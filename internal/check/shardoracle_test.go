package check

import (
	"testing"

	"repro/internal/core"
)

// TestShardOracleClean runs the sharded differential oracle over several
// partition widths: the plaintext model must agree with the sharded
// target at every read, checkpoint, and the final sweep.
func TestShardOracleClean(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 4} {
		div, err := RunShardOracle(core.SchemeAB, 8, shards, 0x5a5a+uint64(shards), 150)
		if err != nil {
			t.Fatalf("P=%d: %v", shards, err)
		}
		if div != nil {
			t.Fatalf("P=%d: sharded oracle diverged: %s", shards, div)
		}
	}
}

// TestShardTargetP1Identity proves the P=1 shard target is the unsharded
// target, not merely equivalent: after the same op sequence the two
// instances have identical state fingerprints (same routing, same seed,
// same RNG draws — every position map entry, stash slot, and DeadQ ref
// agrees).
func TestShardTargetP1Identity(t *testing.T) {
	const seed = 0xd1d
	plain, err := NewSchemeTarget(core.SchemeAB, 8, seed)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := NewShardTarget(core.SchemeAB, 8, 1, seed)
	if err != nil {
		t.Fatal(err)
	}
	if plain.NumBlocks() != sharded.NumBlocks() || plain.BlockSize() != sharded.BlockSize() {
		t.Fatalf("geometry diverged: %d×%d vs %d×%d",
			plain.NumBlocks(), plain.BlockSize(), sharded.NumBlocks(), sharded.BlockSize())
	}
	ops := GenOps(seed, 120, plain.NumBlocks())
	if d := RunTarget(plain, ops); d != nil {
		t.Fatalf("plain target diverged: %s", d)
	}
	if d := RunTarget(sharded, ops); d != nil {
		t.Fatalf("sharded target diverged: %s", d)
	}
	pf, err := plain.(*aboramTarget).o.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	sf, err := sharded.(*shardTarget).image(0)
	if err != nil {
		t.Fatal(err)
	}
	if pf != sf {
		t.Fatalf("P=1 state fingerprints diverged after identical ops:\n plain   %x\n sharded %x", pf, sf)
	}
}

// misroutedTarget wraps a shard target with a buggy write path: writes
// to odd blocks land one block over, i.e. on the wrong shard. The oracle
// must catch it — this is the mutation a real router bug would produce.
type misroutedTarget struct {
	Target
}

func (m *misroutedTarget) Write(block int64, data []byte) error {
	if block%2 == 1 {
		block = (block + 1) % m.NumBlocks()
	}
	return m.Target.Write(block, data)
}

// TestShardOracleDetectsMisroute proves the sharded oracle is live: a
// target that misroutes writes diverges from the model.
func TestShardOracleDetectsMisroute(t *testing.T) {
	inner, err := NewShardTarget(core.SchemeAB, 8, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	ops := GenOps(7, 200, inner.NumBlocks())
	if d := RunTarget(&misroutedTarget{Target: inner}, ops); d == nil {
		t.Fatal("oracle accepted a target that writes odd blocks to the wrong shard")
	}
}

// TestShardIsolation asserts the routing law confines every op: an op
// routed to shard i leaves every other shard's serialized image
// byte-identical.
func TestShardIsolation(t *testing.T) {
	if err := CheckShardIsolation(core.SchemeAB, 8, 3, 0xbead, 48); err != nil {
		t.Fatal(err)
	}
	if err := CheckShardIsolation(core.SchemeAB, 8, 1, 1, 8); err == nil {
		t.Fatal("isolation check accepted a single-shard fleet (nothing to isolate)")
	}
}
