package check

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/aboram"
	"repro/internal/durable"
	"repro/internal/faults"
	"repro/internal/rng"
	"repro/internal/server"
	"repro/internal/vfs"
)

// Chaos soak: the whole serving stack — durable engine on a
// fault-injected filesystem, scheduler, TCP front end with a seeded
// retry-dedup window, retrying clients with circuit breakers — run
// in-process under seeded kill/restart schedules, overload bursts, and
// one full blackout, then verified end to end:
//
//   - zero acked-write loss: every block's final content is an issued
//     write with sequence >= the last acknowledged one for that block;
//   - zero double-apply: the engine never applies a write id after that
//     id was acknowledged (per-id write fingerprints, checked inline by
//     an engine wrapper and again in the final sweep);
//   - shed means shed: a request the client saw fail with ErrOverloaded
//     or ErrBreakerOpen (the definitively-not-executed contract) is
//     never observed applied.
//
// The fault schedule is a pure function of the seed; TCP and goroutine
// interleavings are not, so the soak asserts invariants, not exact
// counts. Workers own disjoint block sets and stamp every payload with
// (worker, seq, block), which is what makes loss, rollback, and
// double-apply distinguishable at read time.

// SoakOptions tunes RunSoak.
type SoakOptions struct {
	// Seed drives the fault schedules and workload mix.
	Seed uint64
	// Duration is the serving-time budget (excluding final verification).
	Duration time.Duration
	// Workers is the number of writer/reader clients, each owning a
	// disjoint block set. Default 3.
	Workers int
	// BurstClients is the number of extra overload generators that hammer
	// the server during burst windows. Default 6.
	BurstClients int
	// Shards is the number of independent ORAM trees behind the router
	// (block b on shard b mod Shards). 1 (the default) is the unsharded
	// soak; larger values run every incarnation as a sharded fleet whose
	// shards share one fault injector, so a kill takes down all trees at
	// once and recovery must bring every shard back consistent.
	Shards int
	// Reshard runs the soak across a live resharding plan: the fleet
	// starts at 2 shards and the supervisor drives 2→3 and then 3→2
	// live migrations through the crash-safe journal, so kills land
	// mid-copy, mid-journal-append, and mid-cutover while clients keep
	// writing. Each incarnation recovers the layout the journal names
	// (resuming any in-flight migration from its durable watermark),
	// and after the serving budget any unfinished migration is driven
	// to completion cleanly before the final sweep. Forces Shards=2.
	Reshard bool
	// Delta switches every incarnation to the incremental durability
	// configuration: delta checkpoints with periodic full bases, live-WAL
	// compaction, rotations deferred to batch boundaries, and — unlike
	// the deterministic crash schedules — background checkpoint
	// publishes, so kills race genuinely concurrent publish goroutines.
	Delta bool
	// Replicate runs the whole soak with warm-standby replication live:
	// every incarnation's shards ship their durability stream (semi-sync,
	// short ack timeout) to one long-lived ReplicaSession mirroring into
	// a sibling replica directory, while a chaos goroutine subjects the
	// replication link to blackouts (hard drops) and one-way partitions
	// — frames vanishing while acks flow, and the reverse. After the
	// serving budget a final clean incarnation lets the link drain
	// (bootstrap + acked == shipped), then the replica directory is
	// promoted and every owned block re-verified through the promoted
	// fleet: acked-write loss on the standby fails the soak exactly as
	// it would on the primary. Incompatible with Reshard (a standby pins
	// one layout generation).
	Replicate bool
	// Dir is the engine data directory (must be empty). With Shards > 1
	// each shard keeps its own snapshot+WAL under Dir/shard-<i>, the
	// daemon's layout.
	Dir string
}

func (o SoakOptions) withDefaults() SoakOptions {
	if o.Reshard {
		o.Shards = 2 // the plan's starting (and final) width
	}
	if o.Workers <= 0 {
		o.Workers = 3
	}
	if o.BurstClients <= 0 {
		o.BurstClients = 6
	}
	if o.Shards <= 0 {
		o.Shards = 1
	}
	if o.Duration <= 0 {
		o.Duration = 2 * time.Second
	}
	return o
}

// SoakReport summarizes a soak run.
type SoakReport struct {
	Seed         uint64
	Shards       int // ORAM trees behind the router
	Incarnations int // engine incarnations (including the final clean one)
	Crashes      int

	AckedWrites   uint64 // writes acknowledged to workers
	ShedWrites    uint64 // writes definitively not executed (overload/breaker)
	Indeterminate uint64 // writes whose fate a crash left unknown
	Reads         uint64 // verified reads served

	Overloaded       uint64 // overloaded responses clients received
	BreakerOpens     uint64 // breaker open transitions across all clients
	BreakerFastFails uint64 // ops failed fast while a breaker was open
	PostBlackoutAcks uint64 // acks after the blackout (breakers closed again)

	Applies      uint64 // identified write applies seen by the tracker
	EngineWrites uint64 // engine-logged appends across incarnations
	EngineSyncs  uint64 // WAL fsyncs across incarnations
	BatchedSyncs uint64 // fsyncs issued by the scheduler's group commit
	Deduped      uint64 // retries answered from the dedup window
	IDsRecovered int    // ids recovered across all restarts

	EngineDeltas      uint64 // delta checkpoints published (Delta mode)
	EngineCompactions uint64 // live-WAL compaction runs (Delta mode)
	DeltasApplied     int    // chain deltas applied across all recoveries

	ReshardsStarted   int    // Begin records in the journal (Reshard mode)
	ReshardsResumed   int    // incarnations that resumed an in-flight migration
	ReshardsCompleted int    // cutovers + completed rollbacks in the journal
	FinalShards       int    // serving width after the plan completed
	FinalGen          uint64 // serving generation after the plan completed

	ReplBoots       uint64 // replica bootstraps completed (Replicate mode)
	ReplDegraded    uint64 // semi-sync waits that timed out into local-only acks
	ReplSendErrors  uint64 // frame sends that dropped the replication link
	ReplPromoteTerm uint64 // fencing term the promoted replica took
	ReplicaReads    uint64 // blocks verified through the promoted replica

	Violations []string // exactly-once / shed-contract violations
}

func (r *SoakReport) String() string {
	s := fmt.Sprintf("seed %d (%d shards): %d incarnations (%d crashes), %d acked, %d shed, %d indeterminate, %d reads, "+
		"%d overloaded, %d breaker opens, %d applies, %d syncs (%d batched) for %d appends, %d deduped, %d ids recovered, "+
		"%d deltas (%d applied on recovery), %d compactions, %d violations",
		r.Seed, r.Shards, r.Incarnations, r.Crashes, r.AckedWrites, r.ShedWrites, r.Indeterminate, r.Reads,
		r.Overloaded, r.BreakerOpens, r.Applies, r.EngineSyncs, r.BatchedSyncs, r.EngineWrites,
		r.Deduped, r.IDsRecovered, r.EngineDeltas, r.DeltasApplied, r.EngineCompactions, len(r.Violations))
	if r.ReshardsStarted > 0 {
		s += fmt.Sprintf(", %d reshards (%d resumed, %d completed) → %d shards gen %d",
			r.ReshardsStarted, r.ReshardsResumed, r.ReshardsCompleted, r.FinalShards, r.FinalGen)
	}
	if r.ReplicaReads > 0 || r.ReplBoots > 0 {
		s += fmt.Sprintf(", replication: %d boots, %d degradations, %d send errors, %d replica reads at term %d",
			r.ReplBoots, r.ReplDegraded, r.ReplSendErrors, r.ReplicaReads, r.ReplPromoteTerm)
	}
	return s
}

// soakMagic marks a payload written by a soak worker; anything else read
// from an owned block (other than all-zeros) is corruption.
const soakMagic = uint64(0x41425355414b3031) // "ABSUAK01"

// encodePayload stamps (worker, seq, block) into a blockB-byte payload.
func encodePayload(blockB int, worker, seq uint64, block int64) []byte {
	d := make([]byte, blockB)
	binary.BigEndian.PutUint64(d[0:], soakMagic)
	binary.BigEndian.PutUint64(d[8:], worker)
	binary.BigEndian.PutUint64(d[16:], seq)
	binary.BigEndian.PutUint64(d[24:], uint64(block))
	for i := 32; i < blockB; i++ {
		d[i] = byte(seq) ^ byte(i*7)
	}
	return d
}

// decodePayload inverts encodePayload; ok=false for anything a worker
// never wrote (including the all-zero never-written block).
func decodePayload(d []byte) (worker, seq uint64, block int64, ok bool) {
	if len(d) < 32 || binary.BigEndian.Uint64(d[0:]) != soakMagic {
		return 0, 0, 0, false
	}
	return binary.BigEndian.Uint64(d[8:]), binary.BigEndian.Uint64(d[16:]),
		int64(binary.BigEndian.Uint64(d[24:])), true
}

// soakKey identifies one issued write.
type soakKey struct {
	worker, seq uint64
}

// soakIssue is the ledger's record of one issued write: its identity and
// the block it targets (the routing law derives the owning shard from
// the block and the width of whichever layout generation applies it).
type soakIssue struct {
	key   soakKey
	block int64
}

// ledger is the shared exactly-once bookkeeping between the client side
// (issues, acks, sheds) and the engine side (applies). The request-id
// registry lives here — not in a per-incarnation structure — so a retry
// that straddles a server restart is still correlated to its write.
// widths maps each layout generation to its shard count, so the
// cross-shard check stays exact while a live migration has two layouts
// applying writes at once (an apply is judged against the width of the
// generation whose tree it landed in).
type ledger struct {
	mu         sync.Mutex
	ids        map[uint64]soakIssue // request id -> issued write
	widths     map[uint64]int       // layout generation -> shard count
	acked      map[soakKey]bool
	shed       map[soakKey]bool
	applies    map[soakKey]int
	applyCount uint64
	violations []string
}

func newLedger() *ledger {
	return &ledger{
		ids:     make(map[uint64]soakIssue),
		widths:  make(map[uint64]int),
		acked:   make(map[soakKey]bool),
		shed:    make(map[soakKey]bool),
		applies: make(map[soakKey]int),
	}
}

// setWidth registers a layout generation's shard count before any of its
// trees can apply writes.
func (l *ledger) setWidth(gen uint64, shards int) {
	l.mu.Lock()
	l.widths[gen] = shards
	l.mu.Unlock()
}

func (l *ledger) violate(format string, args ...any) {
	l.mu.Lock()
	l.violations = append(l.violations, fmt.Sprintf(format, args...))
	l.mu.Unlock()
}

// registerID records an issued write — and the block that determines the
// shard that must serve it — before its first network attempt.
func (l *ledger) registerID(id uint64, k soakKey, block int64) {
	l.mu.Lock()
	l.ids[id] = soakIssue{key: k, block: block}
	l.mu.Unlock()
}

// apply records one engine-level apply of an identified write on the
// given (generation, shard) tree and checks it against the ledger:
// applying a write AFTER its ack is the double-apply the dedup window
// exists to prevent, and applying it on any shard but the one the
// routing law names for that generation's width is a cross-shard leak —
// the router executed a write on the wrong tree. (During a migration the
// write re-apply protocol may legally apply one write in both layouts
// before acknowledging it; each apply must still land on the shard its
// own layout's law names.)
func (l *ledger) apply(id uint64, gen uint64, shard int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	iss, ok := l.ids[id]
	if !ok {
		return // a foreign id (e.g. an access op's); not a tracked write
	}
	k := iss.key
	l.applyCount++
	l.applies[k]++
	width := l.widths[gen]
	if width == 0 {
		l.violations = append(l.violations,
			fmt.Sprintf("write (worker %d, seq %d) applied in unknown layout generation %d", k.worker, k.seq, gen))
	} else if want, _ := server.RouteBlock(iss.block, width); shard != want {
		l.violations = append(l.violations,
			fmt.Sprintf("write (worker %d, seq %d) applied on gen-%d shard %d, routing law names shard %d (cross-shard apply)",
				k.worker, k.seq, gen, shard, want))
	}
	if l.acked[k] {
		l.violations = append(l.violations,
			fmt.Sprintf("write (worker %d, seq %d) applied after acknowledgment (double-apply)", k.worker, k.seq))
	}
}

func (l *ledger) markAcked(k soakKey) {
	l.mu.Lock()
	l.acked[k] = true
	l.mu.Unlock()
}

func (l *ledger) markShed(k soakKey) {
	l.mu.Lock()
	l.shed[k] = true
	l.mu.Unlock()
}

// finalSweepChecks runs the whole-run ledger assertions: no shed write
// was ever applied.
func (l *ledger) finalSweepChecks() {
	l.mu.Lock()
	defer l.mu.Unlock()
	for k := range l.shed {
		if l.applies[k] > 0 {
			l.violations = append(l.violations,
				fmt.Sprintf("shed write (worker %d, seq %d) was applied %d time(s) despite the not-executed contract",
					k.worker, k.seq, l.applies[k]))
		}
	}
}

// applyTracker wraps one shard's durable engine for the scheduler,
// recording every identified write apply (tagged with the generation
// and shard it landed on) in the ledger. It forwards the group commit
// interface so the scheduler's deferred-ack path stays active. Reshard
// copy traffic writes with id 0 and is not tracked — the copier moves
// already-applied content, it does not apply client writes.
type applyTracker struct {
	eng   *durable.Engine
	led   *ledger
	gen   uint64
	shard int
}

func (t *applyTracker) NumBlocks() int64 { return t.eng.NumBlocks() }
func (t *applyTracker) BlockSize() int   { return t.eng.BlockSize() }
func (t *applyTracker) Encrypted() bool  { return t.eng.Encrypted() }

func (t *applyTracker) Access(block int64) error         { return t.eng.Access(block) }
func (t *applyTracker) Read(block int64) ([]byte, error) { return t.eng.Read(block) }

func (t *applyTracker) Write(block int64, data []byte) error {
	return t.WriteIdentified(0, block, data)
}

func (t *applyTracker) WriteIdentified(id uint64, block int64, data []byte) error {
	err := t.eng.WriteIdentified(id, block, data)
	if err == nil && id != 0 {
		// Count only successful applies: a failed write poisons the
		// engine fail-stop and never produces an ack, and recovery's
		// recovered-id set adjudicates whatever prefix survived.
		t.led.apply(id, t.gen, t.shard)
	}
	return err
}

func (t *applyTracker) BatchSync() error  { return t.eng.BatchSync() }
func (t *applyTracker) GroupCommit() bool { return t.eng.GroupCommit() }

// MaybeCheckpoint forwards the scheduler's batch-boundary checkpoint
// hook, so deferred rotations and compactions stay active behind the
// tracker (the scheduler discovers the hook by type assertion).
func (t *applyTracker) MaybeCheckpoint() error { return t.eng.MaybeCheckpoint() }

// soakState is the shared runtime the supervisor, workers, and burst
// clients coordinate through.
type soakState struct {
	addr     atomic.Value // string; "" while the server is down
	burstOn  atomic.Bool
	stop     atomic.Bool
	blackout atomic.Bool // set once the blackout has ended
	led      *ledger
}

func (s *soakState) dialer(timeout time.Duration) func() (net.Conn, error) {
	return func() (net.Conn, error) {
		addr, _ := s.addr.Load().(string)
		if addr == "" {
			return nil, errors.New("soak: server down (blackout)")
		}
		return net.DialTimeout("tcp", addr, timeout)
	}
}

// blockState is a worker's view of one owned block.
type blockState struct {
	lastAcked uint64          // highest acknowledged seq
	issued    map[uint64]bool // every seq ever sent for this block
	shed      map[uint64]bool // seqs definitively not executed
}

// soakWorker drives identified writes and verifying reads over its own
// block partition.
type soakWorker struct {
	id     uint64
	blocks []int64
	blockB int
	r      *rng.Source
	st     *soakState

	seq    uint64
	per    map[int64]*blockState
	report struct {
		acked, shed, indeterminate, reads uint64
		overloaded, opens, fastFails      uint64
		postBlackoutAcks                  uint64
	}
}

func (w *soakWorker) run(clientSeed uint64) {
	cfg := server.ClientConfig{
		Timeout:          500 * time.Millisecond,
		MaxAttempts:      3,
		BaseBackoff:      time.Millisecond,
		MaxBackoff:       20 * time.Millisecond,
		Seed:             clientSeed,
		Dialer:           w.st.dialer(200 * time.Millisecond),
		BreakerThreshold: 5,
		BreakerCooldown:  15 * time.Millisecond,
	}
	var c *server.Client
	dial := func() bool {
		var err error
		c, err = server.DialConfig("", cfg)
		return err == nil
	}
	for !dial() {
		if w.st.stop.Load() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	defer func() {
		st := c.Stats()
		w.report.overloaded += st.Overloaded
		w.report.opens += st.BreakerOpens
		w.report.fastFails += st.BreakerFastFails
		c.Close()
	}()

	for !w.st.stop.Load() {
		block := w.blocks[w.r.Uint64n(uint64(len(w.blocks)))]
		bs := w.per[block]
		if bs == nil {
			bs = &blockState{issued: make(map[uint64]bool), shed: make(map[uint64]bool)}
			w.per[block] = bs
		}
		switch p := w.r.Float64(); {
		case p < 0.55:
			w.seq++
			seq := w.seq
			data := encodePayload(w.blockB, w.id, seq, block)
			bs.issued[seq] = true
			id := soakWriteID(w.id, seq)
			w.st.led.registerID(id, soakKey{w.id, seq}, block)
			err := c.WriteID(id, block, data)
			switch {
			case err == nil:
				w.st.led.markAcked(soakKey{w.id, seq})
				bs.lastAcked = seq
				w.report.acked++
				if w.st.blackout.Load() {
					w.report.postBlackoutAcks++
				}
			case errors.Is(err, server.ErrOverloaded) || errors.Is(err, server.ErrBreakerOpen):
				w.st.led.markShed(soakKey{w.id, seq})
				bs.shed[seq] = true
				w.report.shed++
				time.Sleep(time.Millisecond) // shed means back off
			default:
				// Crash, connection break, or server error: in doubt.
				w.report.indeterminate++
				time.Sleep(2 * time.Millisecond)
			}
		case p < 0.85:
			got, err := c.Read(block)
			if err != nil {
				continue
			}
			w.report.reads++
			if v := w.checkRead(block, got); v != "" {
				w.st.led.violate("%s", v)
			}
		default:
			c.Access(block) // pattern-only load; outcome irrelevant
		}
	}
}

// checkRead validates one read of an owned block against the worker's
// issue history: the value must be all-zeros (nothing acked yet), or an
// issued seq that is neither shed nor older than the last ack.
func (w *soakWorker) checkRead(block int64, got []byte) string {
	bs := w.per[block]
	if bs == nil {
		bs = &blockState{issued: make(map[uint64]bool), shed: make(map[uint64]bool)}
		w.per[block] = bs
	}
	rw, rseq, rblock, ok := decodePayload(got)
	if !ok {
		allZero := true
		for _, b := range got {
			if b != 0 {
				allZero = false
				break
			}
		}
		if allZero && bs.lastAcked == 0 {
			return ""
		}
		return fmt.Sprintf("worker %d block %d: unrecognized content (acked through seq %d)", w.id, block, bs.lastAcked)
	}
	switch {
	case rw != w.id || rblock != block:
		return fmt.Sprintf("worker %d block %d: holds foreign payload (worker %d, block %d)", w.id, block, rw, rblock)
	case !bs.issued[rseq]:
		return fmt.Sprintf("worker %d block %d: holds never-issued seq %d", w.id, block, rseq)
	case bs.shed[rseq]:
		return fmt.Sprintf("worker %d block %d: holds SHED seq %d (not-executed contract broken)", w.id, block, rseq)
	case rseq < bs.lastAcked:
		return fmt.Sprintf("worker %d block %d: rolled back to seq %d below acked seq %d", w.id, block, rseq, bs.lastAcked)
	}
	return ""
}

// soakWriteID derives the wire request id a worker uses for (worker,
// seq) — the high bits identify the worker so ids never collide across
// workers (and are far from the nonce-based ids clients mint for access
// ops).
func soakWriteID(worker, seq uint64) uint64 {
	return (worker+1)<<40 | (seq & 0xffffffffff)
}

// burstStats aggregates the overload generators' client counters.
type burstStats struct {
	mu                           sync.Mutex
	overloaded, opens, fastFails uint64
}

// runBurst hammers Access ops during burst windows to push the
// scheduler into overload.
func runBurst(st *soakState, seed uint64, numBlocks int64, stats *burstStats) {
	cfg := server.ClientConfig{
		Timeout:          100 * time.Millisecond,
		MaxAttempts:      1,
		Seed:             seed,
		Dialer:           st.dialer(50 * time.Millisecond),
		BreakerThreshold: 3,
		BreakerCooldown:  10 * time.Millisecond,
	}
	r := rng.New(seed ^ 0xb0057)
	var c *server.Client
	for !st.stop.Load() {
		if !st.burstOn.Load() {
			time.Sleep(2 * time.Millisecond)
			continue
		}
		if c == nil {
			var err error
			if c, err = server.DialConfig("", cfg); err != nil {
				time.Sleep(2 * time.Millisecond)
				continue
			}
		}
		c.Access(int64(r.Uint64n(uint64(numBlocks))))
	}
	if c != nil {
		s := c.Stats()
		stats.mu.Lock()
		stats.overloaded += s.Overloaded
		stats.opens += s.BreakerOpens
		stats.fastFails += s.BreakerFastFails
		stats.mu.Unlock()
		c.Close()
	}
}

// RunSoak runs the chaos soak and returns its report; the error is
// non-nil when any exactly-once, shed-contract, or cross-shard
// violation was found.
func RunSoak(opt SoakOptions) (*SoakReport, error) {
	opt = opt.withDefaults()
	if opt.Replicate && opt.Reshard {
		return nil, errors.New("soak: Replicate and Reshard are mutually exclusive (a standby pins one layout generation)")
	}
	r := rng.New(opt.Seed ^ 0x736f616b)
	rep := &SoakReport{Seed: opt.Seed, Shards: opt.Shards}

	// Per-shard tree configurations are derived exactly as the daemon
	// derives them — ShardSeed over the generation seed (generation 0
	// keeps the base seed, so Shards=1 is the pre-sharding soak
	// unchanged); soakFleet applies the law when opening a fleet.
	probe, err := aboram.New(crashOptions(opt.Dir, opt.Seed, vfs.OS{}, false).ORAM)
	if err != nil {
		return nil, err
	}
	blockB := probe.BlockSize()
	// Global address space the workers write: the plan's minimum width,
	// so every owned block stays in range through every layout the
	// Reshard plan serves (migrations serve perShard*min(P, P′)).
	numBlocks := probe.NumBlocks() * int64(opt.Shards)

	st := &soakState{led: newLedger()}
	st.addr.Store("")
	st.led.setWidth(0, opt.Shards)
	if opt.Reshard {
		// The fixed migration plan's layouts: gen 1 grows to 3 shards,
		// gen 2 shrinks back to 2.
		st.led.setWidth(1, 3)
		st.led.setWidth(2, 2)
	}

	// Workers own disjoint block partitions: worker i gets blocks
	// congruent to i modulo Workers (capped to a small working set so
	// blocks are rewritten, not touched once).
	workers := make([]*soakWorker, opt.Workers)
	var wg sync.WaitGroup
	for i := range workers {
		var blocks []int64
		for b := int64(i); b < numBlocks && len(blocks) < 8; b += int64(opt.Workers) {
			blocks = append(blocks, b)
		}
		workers[i] = &soakWorker{
			id: uint64(i + 1), blocks: blocks, blockB: blockB,
			r: rng.New(opt.Seed ^ (0x77<<8 | uint64(i))), st: st,
			per: make(map[int64]*blockState),
		}
	}

	// Replicate mode: one standby session lives across every primary
	// incarnation, redialing whatever address the supervisor publishes;
	// its link runs through a faults.Conn so the chaos goroutine can
	// partition it one direction at a time or drop it outright.
	var sess *server.ReplicaSession
	var link *soakReplLink
	if opt.Replicate {
		link = &soakReplLink{}
		linkIn := faults.New(faults.Config{Seed: r.Uint64()})
		sess = server.NewReplicaSession(server.ReplicaSessionConfig{
			Addrs:         []string{"soak-primary"}, // placeholder; the dial hook resolves st.addr
			DataDir:       opt.Dir + "-replica",
			Shards:        opt.Shards,
			Timeout:       250 * time.Millisecond,
			RedialBackoff: 15 * time.Millisecond,
			Dial: func(string) (net.Conn, error) {
				addr, _ := st.addr.Load().(string)
				if addr == "" {
					return nil, errors.New("soak: primary down")
				}
				raw, err := net.DialTimeout("tcp", addr, 250*time.Millisecond)
				if err != nil {
					return nil, err
				}
				c := faults.WrapConn(raw, linkIn)
				link.set(c)
				return c, nil
			},
		})
		go sess.Run()
		defer sess.Stop()
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			runLinkChaos(st, link, seed)
		}(r.Uint64())
	}

	var bstats burstStats
	for i := 0; i < opt.BurstClients; i++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			runBurst(st, seed, numBlocks, &bstats)
		}(opt.Seed ^ (0xb0<<8 | uint64(i)))
	}
	for i, w := range workers {
		wg.Add(1)
		go func(w *soakWorker, seed uint64) {
			defer wg.Done()
			w.run(seed)
		}(w, opt.Seed^(0xc0<<8|uint64(i)))
	}

	// Burst scheduler: overload windows alternate with calm ones.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !st.stop.Load() {
			st.burstOn.Store(true)
			sleepUnlessStopped(st, 80*time.Millisecond)
			st.burstOn.Store(false)
			sleepUnlessStopped(st, 120*time.Millisecond)
		}
	}()

	// Supervisor: run incarnations until the time budget is spent,
	// inserting one full blackout at roughly half time.
	deadline := time.Now().Add(opt.Duration)
	blackoutAt := time.Now().Add(opt.Duration / 2)
	blackoutDone := false
	for time.Now().Before(deadline) {
		rep.Incarnations++
		// One injector shared by every shard's filesystem: the kill hits
		// the whole fleet at once, the daemon's failure mode.
		in := faults.New(faults.Config{
			Seed:         r.Uint64(),
			CrashAfter:   60 + int(r.Uint64n(400)),
			TornWrites:   true,
			DropUnsynced: true,
		})
		fs := faults.WrapFS(vfs.OS{}, in)

		// crashSkip adjudicates an incarnation-setup failure: under an
		// injected crash the incarnation simply ends and the next one
		// recovers; without one the failure is a soak bug.
		crashSkip := func(stage string, err error) error {
			if !in.Crashed() {
				st.stop.Store(true)
				wg.Wait()
				return fmt.Errorf("soak: incarnation %d: %s failed without a crash: %w", rep.Incarnations, stage, err)
			}
			rep.Crashes++
			return nil
		}

		// Resolve the serving layout: static without Reshard; with it,
		// whatever the migration journal names — resuming any in-flight
		// migration from its durable watermark, exactly what a restarted
		// daemon does.
		gen, shards := uint64(0), opt.Shards
		var jn *durable.ReshardJournal
		var lay durable.ReshardLayout
		if opt.Reshard {
			var jerr error
			jn, jerr = durable.OpenReshardJournal(fs, opt.Dir)
			if jerr == nil {
				lay, jerr = durable.ResolveReshard(jn.Records(), opt.Shards)
			}
			if jerr != nil {
				if err := crashSkip("journal recovery", jerr); err != nil {
					return rep, err
				}
				continue
			}
			gen, shards = lay.Gen, lay.Shards
		}

		// Replicate mode ships every shard's durability stream semi-sync;
		// the short ack timeout means a partitioned link degrades to
		// local-only acks instead of wedging the schedulers.
		var ships []*durable.Shipper
		if opt.Replicate {
			ships = soakShips(shards)
		}

		engines, openErr := soakFleet(opt, fs, gen, shards, ships)
		if openErr != nil {
			if err := crashSkip("recovery", openErr); err != nil {
				return rep, err
			}
			continue
		}

		// Pick this incarnation's migration: resume the journaled one, or
		// durably begin the next step of the 2→3→2 plan.
		migrate, tgen, tto := false, uint64(0), 0
		var targets []*durable.Engine
		if opt.Reshard {
			switch {
			case lay.Active != nil:
				migrate, tgen, tto = true, lay.Active.Gen, lay.Active.To
				rep.ReshardsResumed++
			case lay.MaxGen == 0:
				migrate, tgen, tto = true, 1, 3
			case lay.Gen == 1 && lay.Shards == 3:
				migrate, tgen, tto = true, 2, 2
			}
			if migrate && lay.Active == nil {
				if err := jn.Append(durable.ReshardRecord{Op: durable.ReshardBegin, Gen: tgen, From: shards, To: tto}); err != nil {
					closeReshardFleet(engines)
					if err := crashSkip("journal begin", err); err != nil {
						return rep, err
					}
					continue
				}
			}
			if migrate {
				var terr error
				if targets, terr = soakFleet(opt, fs, tgen, tto, nil); terr != nil {
					closeReshardFleet(engines)
					if err := crashSkip("target recovery", terr); err != nil {
						return rep, err
					}
					continue
				}
			}
		}

		trackers := make([]server.Engine, len(engines))
		for si, eng := range engines {
			rep.IDsRecovered += eng.Recovery().IDsRecovered
			rep.DeltasApplied += eng.Recovery().DeltasApplied
			trackers[si] = &applyTracker{eng: eng, led: st.led, gen: gen, shard: si}
		}
		// A tiny queue relative to the client population guarantees the
		// burst windows actually overflow it (overloaded responses). The
		// Reshard soak runs slightly deeper: the copier's persistent ops
		// share the queue, and with depth 2 they plus the bursts can
		// starve the workers of every single ack.
		queue := 2
		if opt.Reshard {
			queue = 8
		}
		srv, err := server.NewSharded(trackers, server.Config{Queue: queue, Batch: 8})
		if err != nil {
			st.stop.Store(true)
			wg.Wait()
			closeReshardFleet(engines)
			closeReshardFleet(targets)
			return rep, fmt.Errorf("soak: incarnation %d: %w", rep.Incarnations, err)
		}
		srv.SetGeneration(gen)
		var res *server.Resharder
		if migrate {
			ttrackers := make([]server.Engine, len(targets))
			for si, eng := range targets {
				rep.IDsRecovered += eng.Recovery().IDsRecovered
				rep.DeltasApplied += eng.Recovery().DeltasApplied
				ttrackers[si] = &applyTracker{eng: eng, led: st.led, gen: tgen, shard: si}
			}
			cfg := server.ReshardConfig{
				Journal: &reshardJournalAdapter{j: jn, gen: tgen, to: tto},
				// Small fenced ranges keep write stalls short while the
				// copy competes with client and burst traffic, and the
				// pace guarantees client ops a window between ranges.
				RangeSize: 16,
				Pace:      2 * time.Millisecond,
				Gen:       tgen,
			}
			if lay.Active != nil {
				cfg.Watermark, cfg.Aborting = lay.Active.Watermark, lay.Active.Aborting
			}
			if res, err = srv.BeginReshard(ttrackers, cfg); err != nil {
				st.stop.Store(true)
				wg.Wait()
				srv.Close()
				closeReshardFleet(engines)
				closeReshardFleet(targets)
				return rep, fmt.Errorf("soak: incarnation %d: begin reshard: %w", rep.Incarnations, err)
			}
			go res.Run() // terminal state is adjudicated by the journal
		}
		tcfg := server.TCPConfig{
			RequestTimeout: 250 * time.Millisecond,
			DedupWindow:    4096,
		}
		if opt.Replicate {
			hub := &server.ReplicaHub{
				Shippers: ships,
				Term:     fleetTerm(engines),
				Nudge: func(shard int) {
					srv.Access(context.Background(), int64(shard))
				},
				HeartbeatEvery: 20 * time.Millisecond,
			}
			tcfg.ReplJoin = hub.Serve
			tcfg.Replication = hub.Info
		}
		tsrv := server.NewTCP(srv, tcfg)
		for _, eng := range append(append([]*durable.Engine(nil), engines...), targets...) {
			tsrv.SeedDedup(eng.RecentWriteIDs())
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			st.stop.Store(true)
			wg.Wait()
			srv.Close()
			closeReshardFleet(engines)
			closeReshardFleet(targets)
			return rep, fmt.Errorf("soak: listen: %w", err)
		}
		serveDone := make(chan struct{})
		go func() { tsrv.Serve(ln); close(serveDone) }()
		st.addr.Store(ln.Addr().String())

		// Serve until the injector kills the incarnation or time is up.
		for !in.Crashed() && time.Now().Before(deadline) {
			time.Sleep(2 * time.Millisecond)
		}
		crashed := in.Crashed()
		st.addr.Store("")
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		tsrv.Shutdown(ctx)
		cancel()
		srv.Close() // stops any in-flight migration before draining the schedulers
		if res != nil {
			<-res.Done() // the copier goroutine must be out of the engines
		}
		<-serveDone
		rep.Deduped += tsrv.Metrics().Deduped
		for _, eng := range append(append([]*durable.Engine(nil), engines...), targets...) {
			est := eng.Stats()
			rep.EngineWrites += est.Writes
			rep.EngineSyncs += est.Syncs
			rep.BatchedSyncs += est.BatchedSyncs
			rep.EngineDeltas += est.DeltasWritten
			rep.EngineCompactions += est.CompactionRuns
			eng.Close()
		}
		for _, s := range ships {
			sst := s.Stats()
			rep.ReplBoots += sst.Boots
			rep.ReplDegraded += sst.AckTimeouts
			rep.ReplSendErrors += sst.SendErrors
		}
		if crashed {
			rep.Crashes++
		}

		// One blackout: leave the server down long enough for every
		// worker's breaker to open, then continue — guaranteeing enough
		// post-blackout serving time to observe the breakers close again,
		// whatever the overall budget.
		if !blackoutDone && time.Now().After(blackoutAt) {
			blackoutDone = true
			time.Sleep(250 * time.Millisecond)
			st.blackout.Store(true)
			if min := time.Now().Add(400 * time.Millisecond); deadline.Before(min) {
				deadline = min
			}
		}
	}
	st.stop.Store(true)
	wg.Wait()

	for _, w := range workers {
		rep.AckedWrites += w.report.acked
		rep.ShedWrites += w.report.shed
		rep.Indeterminate += w.report.indeterminate
		rep.Reads += w.report.reads
		rep.Overloaded += w.report.overloaded
		rep.BreakerOpens += w.report.opens
		rep.BreakerFastFails += w.report.fastFails
		rep.PostBlackoutAcks += w.report.postBlackoutAcks
	}
	rep.Overloaded += bstats.overloaded
	rep.BreakerOpens += bstats.opens
	rep.BreakerFastFails += bstats.fastFails

	// In Reshard mode, drive the migration plan to completion on the
	// clean filesystem first — a daemon restarted after the chaos does
	// the same — so the final sweep reads through the plan's terminal
	// layout.
	finalGen, finalShards := uint64(0), opt.Shards
	if opt.Reshard {
		lay, err := finishReshardPlan(opt)
		if err != nil {
			return rep, err
		}
		finalGen, finalShards = lay.Gen, lay.Shards
		rep.FinalShards, rep.FinalGen = lay.Shards, lay.Gen
		// Plan activity is counted from the journal itself, so chaos-time
		// and clean-coda work land in the same tallies.
		jn, err := durable.OpenReshardJournal(vfs.OS{}, opt.Dir)
		if err != nil {
			return rep, fmt.Errorf("soak: recounting the journal: %w", err)
		}
		for _, rec := range jn.Records() {
			switch rec.Op {
			case durable.ReshardBegin:
				rep.ReshardsStarted++
			case durable.ReshardCutover, durable.ReshardAborted:
				rep.ReshardsCompleted++
			}
		}
	}

	// Final clean incarnation: recover every shard and read back every
	// owned block through the routing law.
	rep.Incarnations++
	var finalShips []*durable.Shipper
	if opt.Replicate {
		finalShips = soakShips(finalShards)
	}
	finals, err := soakFleet(opt, vfs.OS{}, finalGen, finalShards, finalShips)
	if err != nil {
		return rep, fmt.Errorf("soak: final recovery: %w", err)
	}
	defer closeReshardFleet(finals)
	for _, eng := range finals {
		rep.IDsRecovered += eng.Recovery().IDsRecovered
		rep.DeltasApplied += eng.Recovery().DeltasApplied
	}
	// Replicate mode: before reading anything, serve the final fleet to
	// the standby with the chaos stopped, until every shard bootstraps
	// and the whole stream is acknowledged — the replica directory is
	// then a durable image of the final state, ready for promotion.
	if opt.Replicate {
		if err := drainReplica(st, finals, finalShips, sess, rep); err != nil {
			return rep, err
		}
	}
	for _, w := range workers {
		for _, block := range w.blocks {
			shard, local := server.RouteBlock(block, finalShards)
			got, err := finals[shard].Read(local)
			if err != nil {
				return rep, fmt.Errorf("soak: final read of block %d (shard %d): %w", block, shard, err)
			}
			if v := w.checkRead(block, got); v != "" {
				st.led.violate("final sweep: %s", v)
			}
		}
	}
	// Promote the drained replica and run the same sweep through it: the
	// standby must satisfy the zero-acked-loss contract exactly as the
	// primary does, or a failover after this soak would lose writes.
	if opt.Replicate {
		ropt := opt
		ropt.Dir = opt.Dir + "-replica"
		promoted, err := soakFleet(ropt, vfs.OS{}, finalGen, finalShards, nil)
		if err != nil {
			return rep, fmt.Errorf("soak: promoting the replica: %w", err)
		}
		defer closeReshardFleet(promoted)
		term := uint64(0)
		for _, eng := range promoted {
			if t := eng.Term(); t > term {
				term = t
			}
		}
		term++
		for _, eng := range promoted {
			if err := eng.SetTerm(term); err != nil {
				return rep, fmt.Errorf("soak: fencing the promoted replica: %w", err)
			}
		}
		rep.ReplPromoteTerm = term
		for _, w := range workers {
			for _, block := range w.blocks {
				shard, local := server.RouteBlock(block, finalShards)
				got, err := promoted[shard].Read(local)
				if err != nil {
					return rep, fmt.Errorf("soak: promoted read of block %d (shard %d): %w", block, shard, err)
				}
				if v := w.checkRead(block, got); v != "" {
					st.led.violate("promoted replica sweep: %s", v)
				}
				rep.ReplicaReads++
			}
		}
	}
	st.led.finalSweepChecks()

	st.led.mu.Lock()
	rep.Applies = st.led.applyCount
	rep.Violations = append([]string(nil), st.led.violations...)
	st.led.mu.Unlock()
	if len(rep.Violations) > 0 {
		return rep, fmt.Errorf("soak: %d violation(s); first: %s", len(rep.Violations), rep.Violations[0])
	}
	return rep, nil
}

// soakFleet opens one layout generation's shard engines with the soak's
// engine configuration, deriving each tree's seed and directory the way
// the daemon does (generation 0 of a width-1 fleet is the plain
// unsharded layout). A non-nil ships wires shard i's log shipper into
// engine i (Replicate mode). On failure the opened prefix is closed.
func soakFleet(opt SoakOptions, fs vfs.FS, gen uint64, shards int, ships []*durable.Shipper) ([]*durable.Engine, error) {
	base := crashOptions(opt.Dir, opt.Seed, fs, false).ORAM
	engines := make([]*durable.Engine, 0, shards)
	for i := 0; i < shards; i++ {
		oram := base
		oram.Seed = server.ShardSeed(server.GenSeed(opt.Seed, gen), i)
		dopt := durable.Options{
			Dir:           durable.ShardDir(opt.Dir, gen, i, shards),
			ORAM:          oram,
			SnapshotEvery: 32,
			GroupCommit:   true,
			FS:            fs,
		}
		if ships != nil {
			dopt.Ship = ships[i]
		}
		if opt.Delta {
			dopt.DeltaSnapshots = true
			dopt.BaseEvery = 3
			dopt.CompactEvery = 12
			dopt.DeferCheckpoints = true // cuts land at batch boundaries via MaybeCheckpoint
		}
		eng, err := durable.Open(dopt)
		if err != nil {
			closeReshardFleet(engines)
			return nil, err
		}
		engines = append(engines, eng)
	}
	return engines, nil
}

// soakShips builds one semi-sync shipper per shard for an incarnation.
// The short ack timeout is the soak's liveness guarantee: a blackholed
// or partitioned link degrades to local-only acks within one client
// timeout instead of wedging a shard's scheduler.
func soakShips(shards int) []*durable.Shipper {
	ships := make([]*durable.Shipper, shards)
	for i := range ships {
		ships[i] = &durable.Shipper{
			Shard:      i,
			SemiSync:   true,
			AckTimeout: 20 * time.Millisecond,
			ChunkBytes: 4 << 10,
		}
	}
	return ships
}

// fleetTerm derives a ReplicaHub's term source from a fleet: the max
// across shards, the same law the daemon applies.
func fleetTerm(engines []*durable.Engine) func() uint64 {
	return func() uint64 {
		var t uint64
		for _, e := range engines {
			if v := e.Term(); v > t {
				t = v
			}
		}
		return t
	}
}

// soakReplLink hands the chaos goroutine the standby's most recently
// dialed connection, the one the session is currently reading.
type soakReplLink struct {
	mu  sync.Mutex
	cur *faults.Conn
}

func (l *soakReplLink) set(c *faults.Conn) {
	l.mu.Lock()
	l.cur = c
	l.mu.Unlock()
}

func (l *soakReplLink) current() *faults.Conn {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.cur
}

// runLinkChaos subjects the replication link to seeded blackouts and
// one-way partitions while the soak serves: the standby's sends
// (acks) vanish while frames still arrive, or the wire goes silent
// while acks still flow out, or the link drops outright and the
// session redials. On exit it heals the current link so the final
// drain isn't reading a stalled connection.
func runLinkChaos(st *soakState, link *soakReplLink, seed uint64) {
	r := rng.New(seed ^ 0x1e4c4a05)
	for !st.stop.Load() {
		sleepUnlessStopped(st, time.Duration(20+r.Uint64n(100))*time.Millisecond)
		// Only act while a primary is serving: a partition nobody is
		// writing through exercises nothing.
		if addr, _ := st.addr.Load().(string); addr == "" {
			continue
		}
		c := link.current()
		if c == nil {
			continue
		}
		switch r.Uint64n(6) {
		case 0, 1:
			if r.Uint64n(2) == 0 {
				c.SetPartition(true, false) // acks vanish; the primary's semi-sync degrades
			} else {
				c.SetPartition(false, true) // frames stall; delivered in a burst on heal
			}
			// Dwell for several ack timeouts so the partition provably
			// outlives the semi-sync wait, then heal.
			sleepUnlessStopped(st, time.Duration(100+r.Uint64n(100))*time.Millisecond)
			c.SetPartition(false, false)
		case 2:
			c.Close() // blackout: the session redials and re-bootstraps
		default:
			c.SetPartition(false, false) // heal anything a dead link left set
		}
	}
	if c := link.current(); c != nil {
		c.SetPartition(false, false)
	}
}

// drainReplica serves the final clean fleet to the standby — no chaos,
// no clients — until every shard's mirror bootstraps and the standby's
// durable watermark matches everything shipped, then tears the link
// down. Afterwards the replica directories hold a byte-faithful image
// of the final fleet's durable state.
func drainReplica(st *soakState, finals []*durable.Engine, ships []*durable.Shipper, sess *server.ReplicaSession, rep *SoakReport) error {
	srv, err := server.NewSharded(asServerEngines(finals), server.Config{Queue: 64, Batch: 8})
	if err != nil {
		return fmt.Errorf("soak: replica drain: %w", err)
	}
	hub := &server.ReplicaHub{
		Shippers: ships,
		Term:     fleetTerm(finals),
		Nudge: func(shard int) {
			srv.Access(context.Background(), int64(shard))
		},
		HeartbeatEvery: 10 * time.Millisecond,
	}
	tsrv := server.NewTCP(srv, server.TCPConfig{ReplJoin: hub.Serve, Replication: hub.Info})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		return fmt.Errorf("soak: replica drain: %w", err)
	}
	serveDone := make(chan struct{})
	go func() { tsrv.Serve(ln); close(serveDone) }()
	st.addr.Store(ln.Addr().String())

	deadline := time.Now().Add(15 * time.Second)
	drained := false
	for time.Now().Before(deadline) {
		hi, si := hub.Info(), sess.Info()
		if hi.Attached && si.Attached && hi.AckedSeq == hi.ShippedSeq {
			drained = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	st.addr.Store("")
	// The session must be fully stopped before promotion opens the
	// mirror directories: a live link would still be writing them.
	sess.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	tsrv.Shutdown(ctx)
	cancel()
	srv.Close() // drains the schedulers; the engines stay open for the sweep
	<-serveDone
	for _, s := range ships {
		sst := s.Stats()
		rep.ReplBoots += sst.Boots
		rep.ReplDegraded += sst.AckTimeouts
		rep.ReplSendErrors += sst.SendErrors
	}
	if !drained {
		return fmt.Errorf("soak: replication never drained: primary %+v, standby %+v", hub.Info(), sess.Info())
	}
	return nil
}

// finishReshardPlan drives any journaled in-flight migration — and the
// remaining steps of the 2→3→2 plan — to completion on the clean
// filesystem, the way a restarted daemon would, and returns the
// terminal layout.
func finishReshardPlan(opt SoakOptions) (durable.ReshardLayout, error) {
	for step := 0; ; step++ {
		if step > 8 {
			return durable.ReshardLayout{}, errors.New("soak: reshard plan failed to converge")
		}
		jn, err := durable.OpenReshardJournal(vfs.OS{}, opt.Dir)
		if err != nil {
			return durable.ReshardLayout{}, fmt.Errorf("soak: reshard coda: %w", err)
		}
		lay, err := durable.ResolveReshard(jn.Records(), opt.Shards)
		if err != nil {
			return lay, fmt.Errorf("soak: reshard coda: %w", err)
		}
		if lay.Active == nil && lay.Gen >= 2 {
			return lay, nil
		}
		tgen, tto := lay.MaxGen+1, 2
		if lay.Active != nil {
			tgen, tto = lay.Active.Gen, lay.Active.To
		} else {
			if lay.Shards == 2 {
				tto = 3
			}
			if err := jn.Append(durable.ReshardRecord{Op: durable.ReshardBegin, Gen: tgen, From: lay.Shards, To: tto}); err != nil {
				return lay, fmt.Errorf("soak: reshard coda begin: %w", err)
			}
		}
		cur, err := soakFleet(opt, vfs.OS{}, lay.Gen, lay.Shards, nil)
		if err != nil {
			return lay, fmt.Errorf("soak: reshard coda recovery: %w", err)
		}
		targets, err := soakFleet(opt, vfs.OS{}, tgen, tto, nil)
		if err != nil {
			closeReshardFleet(cur)
			return lay, fmt.Errorf("soak: reshard coda target recovery: %w", err)
		}
		sh, err := server.NewSharded(asServerEngines(cur), server.Config{Queue: 64, Batch: 8})
		if err != nil {
			closeReshardFleet(cur)
			closeReshardFleet(targets)
			return lay, err
		}
		sh.SetGeneration(lay.Gen)
		cfg := server.ReshardConfig{
			Journal:   &reshardJournalAdapter{j: jn, gen: tgen, to: tto},
			RangeSize: 128, // no client traffic to stall; big strides for speed
			Gen:       tgen,
		}
		if lay.Active != nil {
			cfg.Watermark, cfg.Aborting = lay.Active.Watermark, lay.Active.Aborting
		}
		res, err := sh.BeginReshard(asServerEngines(targets), cfg)
		if err == nil {
			err = res.Run()
		}
		sh.Close()
		closeReshardFleet(cur)
		closeReshardFleet(targets)
		if err != nil {
			return lay, fmt.Errorf("soak: reshard coda migration to gen %d: %w", tgen, err)
		}
	}
}

func sleepUnlessStopped(st *soakState, d time.Duration) {
	end := time.Now().Add(d)
	for time.Now().Before(end) && !st.stop.Load() {
		time.Sleep(5 * time.Millisecond)
	}
}
