package check

import (
	"os"
	"testing"
	"time"
)

// TestChaosSoak runs the full-stack chaos soak: engine restarts under
// injected crashes, overload bursts, one blackout, retrying breaker
// clients — and requires zero exactly-once or shed-contract violations.
//
// The default run is short and suitable for `go test`; set SOAKTIME to a
// duration (e.g. SOAKTIME=2m) to run the long soak.
func TestChaosSoak(t *testing.T) {
	dur := 1500 * time.Millisecond
	if testing.Short() {
		dur = 800 * time.Millisecond
	}
	if env := os.Getenv("SOAKTIME"); env != "" {
		d, err := time.ParseDuration(env)
		if err != nil {
			t.Fatalf("SOAKTIME=%q: %v", env, err)
		}
		dur = d
	}

	rep, err := RunSoak(SoakOptions{Seed: 1, Duration: dur, Dir: t.TempDir()})
	if rep != nil {
		t.Logf("%v", rep)
		for _, v := range rep.Violations {
			t.Errorf("violation: %s", v)
		}
	}
	if err != nil {
		t.Fatalf("soak: %v", err)
	}

	// The soak is only evidence if the hostile conditions occurred. TCP
	// scheduling is nondeterministic, so these are floors, not counts.
	if rep.AckedWrites == 0 {
		t.Fatal("no write was ever acknowledged; the soak served nothing")
	}
	if rep.Crashes == 0 {
		t.Error("no incarnation ever crashed; the fault injector never fired")
	}
	if rep.Applies == 0 {
		t.Error("the apply tracker saw no identified writes; correlation is broken")
	}
	if rep.IDsRecovered == 0 {
		t.Error("no ids were ever recovered across restarts; dedup persistence untested")
	}
	if rep.Overloaded == 0 {
		t.Error("no overloaded response was ever observed; the bursts never overflowed the queue")
	}
	if rep.ShedWrites == 0 {
		t.Error("no write was ever shed; graceful degradation untested")
	}
	if rep.BreakerOpens == 0 {
		t.Error("no circuit breaker ever opened despite the blackout")
	}
	if rep.PostBlackoutAcks == 0 {
		t.Error("no ack after the blackout; breakers never closed again")
	}
	if rep.EngineWrites > 0 && rep.EngineSyncs >= rep.EngineWrites {
		t.Errorf("group commit never amortized: %d syncs for %d appends", rep.EngineSyncs, rep.EngineWrites)
	}
}

// TestChaosSoakDelta runs the chaos soak with the incremental durability
// configuration: delta checkpoints on periodic full bases, live-WAL
// compaction, rotations deferred to batch boundaries, and background
// publishes racing the kills. The exactly-once and shed contracts are
// unchanged; on top, the delta machinery must have actually run.
func TestChaosSoakDelta(t *testing.T) {
	dur := 1500 * time.Millisecond
	if testing.Short() {
		dur = 800 * time.Millisecond
	}
	if env := os.Getenv("SOAKTIME"); env != "" {
		d, err := time.ParseDuration(env)
		if err != nil {
			t.Fatalf("SOAKTIME=%q: %v", env, err)
		}
		dur = d
	}

	rep, err := RunSoak(SoakOptions{Seed: 3, Duration: dur, Delta: true, Dir: t.TempDir()})
	if rep != nil {
		t.Logf("%v", rep)
		for _, v := range rep.Violations {
			t.Errorf("violation: %s", v)
		}
	}
	if err != nil {
		t.Fatalf("delta soak: %v", err)
	}

	if rep.AckedWrites == 0 {
		t.Fatal("no write was ever acknowledged; the delta soak served nothing")
	}
	if rep.Crashes == 0 {
		t.Error("no incarnation ever crashed; the fault injector never fired")
	}
	if rep.Applies == 0 {
		t.Error("the apply tracker saw no identified writes; correlation is broken")
	}
	if rep.EngineDeltas == 0 {
		t.Error("no delta checkpoint was ever published; the incremental path never ran")
	}
	if rep.EngineCompactions == 0 {
		t.Error("no WAL compaction ever ran; the compaction path is untested")
	}
	if !testing.Short() && rep.DeltasApplied == 0 {
		// A short run may crash only right after a base; the full run has
		// enough incarnations that some restart must see a delta tail.
		t.Error("no recovery ever applied a delta chain; restarts never exercised chain recovery")
	}
}

// TestChaosSoakSharded runs the same chaos soak against a 2-shard fleet:
// every kill -9 takes down both trees at once, recovery must bring both
// shards back consistent, and on top of the exactly-once and shed
// contracts the ledger asserts no write is ever applied on a shard other
// than the one the routing law names (cross-shard double-apply).
func TestChaosSoakSharded(t *testing.T) {
	dur := 1500 * time.Millisecond
	if testing.Short() {
		dur = 800 * time.Millisecond
	}
	if env := os.Getenv("SOAKTIME"); env != "" {
		d, err := time.ParseDuration(env)
		if err != nil {
			t.Fatalf("SOAKTIME=%q: %v", env, err)
		}
		dur = d
	}

	rep, err := RunSoak(SoakOptions{Seed: 2, Duration: dur, Shards: 2, Dir: t.TempDir()})
	if rep != nil {
		t.Logf("%v", rep)
		for _, v := range rep.Violations {
			t.Errorf("violation: %s", v)
		}
	}
	if err != nil {
		t.Fatalf("sharded soak: %v", err)
	}

	if rep.AckedWrites == 0 {
		t.Fatal("no write was ever acknowledged; the sharded soak served nothing")
	}
	if rep.Crashes == 0 {
		t.Error("no incarnation ever crashed; the fault injector never fired")
	}
	if rep.Applies == 0 {
		t.Error("the apply tracker saw no identified writes; shard correlation is broken")
	}
	if rep.IDsRecovered == 0 {
		t.Error("no ids were ever recovered across restarts; per-shard dedup persistence untested")
	}
}

// TestChaosSoakReshard runs the chaos soak across the live resharding
// plan: the fleet starts at 2 shards and the supervisor drives 2→3 and
// 3→2 live migrations through the crash-safe journal while kills,
// overload bursts, and the blackout keep landing. Every incarnation
// recovers whatever layout the journal names and resumes any in-flight
// migration from its durable watermark; after the serving budget the
// plan is driven to completion cleanly and the final sweep reads every
// owned block through the terminal 2-shard layout. On top of the
// exactly-once and shed contracts, the ledger judges every apply
// against the width of the generation it landed in — a write applied on
// the wrong tree of EITHER layout mid-migration is a violation.
func TestChaosSoakReshard(t *testing.T) {
	dur := 2 * time.Second
	if testing.Short() {
		dur = time.Second
	}
	if env := os.Getenv("SOAKTIME"); env != "" {
		d, err := time.ParseDuration(env)
		if err != nil {
			t.Fatalf("SOAKTIME=%q: %v", env, err)
		}
		dur = d
	}

	rep, err := RunSoak(SoakOptions{Seed: 4, Duration: dur, Reshard: true, Dir: t.TempDir()})
	if rep != nil {
		t.Logf("%v", rep)
		for _, v := range rep.Violations {
			t.Errorf("violation: %s", v)
		}
	}
	if err != nil {
		t.Fatalf("reshard soak: %v", err)
	}

	if rep.AckedWrites == 0 {
		t.Fatal("no write was ever acknowledged; the reshard soak served nothing")
	}
	if rep.Crashes == 0 {
		t.Error("no incarnation ever crashed; the fault injector never fired")
	}
	if rep.Applies == 0 {
		t.Error("the apply tracker saw no identified writes; correlation is broken")
	}
	if rep.ReshardsStarted < 2 {
		t.Errorf("the plan began only %d migration(s); both 2→3 and 3→2 must run", rep.ReshardsStarted)
	}
	if rep.ReshardsCompleted != rep.ReshardsStarted {
		t.Errorf("%d migrations begun but %d completed; the journal left the plan unfinished",
			rep.ReshardsStarted, rep.ReshardsCompleted)
	}
	if rep.FinalShards != 2 || rep.FinalGen != 2 {
		t.Errorf("terminal layout %d shards gen %d, want the plan's 2 shards gen 2", rep.FinalShards, rep.FinalGen)
	}
}

// TestChaosSoakReplicate runs the chaos soak in failover mode: a
// 2-shard fleet ships its durability stream semi-sync to a long-lived
// standby session while a chaos goroutine subjects the replication link
// to blackouts and one-way partitions (acks vanish while frames flow,
// and the reverse) on top of the usual kills, bursts, and the blackout.
// After the budget the standby drains against a clean fleet, its
// directories are promoted, and every owned block is re-verified
// through the promoted replica — acked-write loss on the standby fails
// the soak exactly like loss on the primary.
func TestChaosSoakReplicate(t *testing.T) {
	dur := 1500 * time.Millisecond
	if testing.Short() {
		dur = 800 * time.Millisecond
	}
	if env := os.Getenv("SOAKTIME"); env != "" {
		d, err := time.ParseDuration(env)
		if err != nil {
			t.Fatalf("SOAKTIME=%q: %v", env, err)
		}
		dur = d
	}

	rep, err := RunSoak(SoakOptions{Seed: 5, Duration: dur, Shards: 2, Replicate: true, Dir: t.TempDir()})
	if rep != nil {
		t.Logf("%v", rep)
		for _, v := range rep.Violations {
			t.Errorf("violation: %s", v)
		}
	}
	if err != nil {
		t.Fatalf("replicate soak: %v", err)
	}

	if rep.AckedWrites == 0 {
		t.Fatal("no write was ever acknowledged; the replicate soak served nothing")
	}
	if rep.Crashes == 0 {
		t.Error("no incarnation ever crashed; the fault injector never fired")
	}
	if rep.ReplBoots == 0 {
		t.Error("the standby never completed a bootstrap; replication never attached")
	}
	if rep.ReplicaReads == 0 {
		t.Fatal("no block was ever verified through the promoted replica")
	}
	if rep.ReplPromoteTerm == 0 {
		t.Error("the promoted replica took no fencing term")
	}
	if rep.ReplDegraded == 0 {
		// Partitions outlive the 20ms ack timeout by an order of
		// magnitude; some semi-sync wait must have degraded.
		t.Error("semi-sync never degraded despite the link chaos; the partitions never bit")
	}
}
