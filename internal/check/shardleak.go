package check

import (
	"context"
	"fmt"

	"repro/aboram"
	"repro/internal/core"
	"repro/internal/server"
)

// Shard-leakage audit. Sharding Ring ORAM is a deliberate, bounded leak:
// an observer of per-shard traffic learns the shard index of every
// access — exactly the low log2(P) bits of its block id — and must learn
// NOTHING more. The audit pins both sides of that bound:
//
//   - exactly log2(P) bits: the observed per-shard access histogram of a
//     real P-shard engine must match, cell for cell, what the routing
//     law predicts from the workload (Pearson chi-square against the
//     predicted counts — a router that is biased, sticky, or
//     load-dependent shifts mass between shards and fails);
//   - nothing more: within each shard the revealed leaf sequence must
//     stay chi-square uniform under that shard's own seed, i.e. the
//     intra-shard access pattern remains oblivious (CheckOblivious per
//     shard, over the shard-local block sequence the workload induces).

// ShardLeakResult summarizes one audit run.
type ShardLeakResult struct {
	Shards   int
	Accesses int
	Observed []uint64  // per-shard ops served, from the engine's counters
	Expected []float64 // per-shard ops the routing law predicts
	Chi2     float64   // observed vs. expected (+Inf: op on an impossible shard)
	Critical float64
	Leaves   []ObliviousResult // per-shard leaf uniformity (empty cells skipped)
}

// Pass reports whether the observed leak is exactly the routing law's:
// shard histogram within the critical band and every audited shard's
// leaf distribution uniform.
func (r ShardLeakResult) Pass() bool {
	if r.Chi2 > r.Critical {
		return false
	}
	for _, l := range r.Leaves {
		if !l.Uniform() {
			return false
		}
	}
	return true
}

func (r ShardLeakResult) String() string {
	return fmt.Sprintf("shard leak audit: P=%d, %d accesses, histogram chi2 %.3f (critical %.3f), %d shards leaf-audited, pass=%v",
		r.Shards, r.Accesses, r.Chi2, r.Critical, len(r.Leaves), r.Pass())
}

// routeHistogram bins a block sequence by a routing function. The audit
// uses the production law (server.RouteBlock); tests substitute biased
// routers as negative controls.
func routeHistogram(blocks []int64, shards int, route func(block int64, shards int) (int, int64)) []uint64 {
	counts := make([]uint64, shards)
	for _, b := range blocks {
		shard, _ := route(b, shards)
		counts[shard]++
	}
	return counts
}

// shardHistogramChi2 compares an observed per-shard histogram against
// the production routing law's prediction for the same block sequence.
func shardHistogramChi2(observed []uint64, blocks []int64, shards int) (stat float64, df int) {
	predicted := routeHistogram(blocks, shards, server.RouteBlock)
	expected := make([]float64, shards)
	for i, c := range predicted {
		expected[i] = float64(c)
	}
	return ChiSquareExpected(observed, expected)
}

// CheckShardLeak drives a real P-shard serving engine through `accesses`
// ops of the workload and audits the leak bound from both sides (see the
// package comment above). The returned result carries the verdict; the
// error covers build/serve failures and eviction-order violations inside
// the per-shard leaf audit.
func CheckShardLeak(s core.Scheme, levels, shards int, seed uint64, accesses int, w Workload) (ShardLeakResult, error) {
	res := ShardLeakResult{Shards: shards, Accesses: accesses}
	engines := make([]server.Engine, shards)
	for i := range engines {
		o, err := aboram.New(aboram.Options{
			Scheme: s, Levels: levels,
			Seed:          server.ShardSeed(seed, i),
			EncryptionKey: oracleKey,
		})
		if err != nil {
			return res, fmt.Errorf("check: building shard %d: %w", i, err)
		}
		engines[i] = o
	}
	sh, err := server.NewSharded(engines, server.Config{Queue: 64, Batch: 8})
	if err != nil {
		return res, err
	}
	defer sh.Close()

	// Drive the workload through the real router, recording the block
	// sequence (for the prediction) and each shard's local sequence (for
	// the per-shard leaf audit).
	ctx := context.Background()
	n := sh.NumBlocks()
	blocks := make([]int64, accesses)
	locals := make([][]int64, shards)
	for i := 0; i < accesses; i++ {
		blk := w(i) % n
		if blk < 0 {
			blk += n
		}
		blocks[i] = blk
		shard, local := server.RouteBlock(blk, shards)
		locals[shard] = append(locals[shard], local)
		if err := sh.Access(ctx, blk); err != nil {
			return res, fmt.Errorf("check: access %d (block %d): %w", i, blk, err)
		}
	}

	// Side one: the engine's own per-shard served counters against the
	// routing law's prediction.
	res.Observed = make([]uint64, shards)
	for i, m := range sh.ShardMetrics() {
		res.Observed[i] = m.Served()
	}
	res.Chi2, _ = shardHistogramChi2(res.Observed, blocks, shards)
	df := shards - 1
	if df < 1 {
		df = 1
	}
	res.Critical = ChiSquareCritical(df, ZCrit999)

	// Side two: each shard's revealed leaf sequence must stay uniform
	// under its own seed. Shards the workload barely touched are skipped
	// (too few samples for a meaningful histogram).
	for i := range locals {
		seq := locals[i]
		if len(seq) < 64 {
			continue
		}
		opt := core.DefaultOptions(levels, server.ShardSeed(seed, i))
		leaf, err := CheckOblivious(s, opt, len(seq), func(j int) int64 { return seq[j] })
		if err != nil {
			return res, fmt.Errorf("check: shard %d leaf audit: %w", i, err)
		}
		res.Leaves = append(res.Leaves, leaf)
	}
	return res, nil
}
