package check

import (
	"context"
	"fmt"

	"repro/aboram"
	"repro/internal/core"
	"repro/internal/server"
)

// Shard-leakage audit. Sharding Ring ORAM is a deliberate, bounded leak:
// an observer of per-shard traffic learns the shard index of every
// access — exactly the low log2(P) bits of its block id — and must learn
// NOTHING more. The audit pins both sides of that bound:
//
//   - exactly log2(P) bits: the observed per-shard access histogram of a
//     real P-shard engine must match, cell for cell, what the routing
//     law predicts from the workload (Pearson chi-square against the
//     predicted counts — a router that is biased, sticky, or
//     load-dependent shifts mass between shards and fails);
//   - nothing more: within each shard the revealed leaf sequence must
//     stay chi-square uniform under that shard's own seed, i.e. the
//     intra-shard access pattern remains oblivious (CheckOblivious per
//     shard, over the shard-local block sequence the workload induces).

// ShardLeakResult summarizes one audit run.
type ShardLeakResult struct {
	Shards   int
	Accesses int
	Observed []uint64  // per-shard ops served, from the engine's counters
	Expected []float64 // per-shard ops the routing law predicts
	Chi2     float64   // observed vs. expected (+Inf: op on an impossible shard)
	Critical float64
	Leaves   []ObliviousResult // per-shard leaf uniformity (empty cells skipped)
}

// Pass reports whether the observed leak is exactly the routing law's:
// shard histogram within the critical band and every audited shard's
// leaf distribution uniform.
func (r ShardLeakResult) Pass() bool {
	if r.Chi2 > r.Critical {
		return false
	}
	for _, l := range r.Leaves {
		if !l.Uniform() {
			return false
		}
	}
	return true
}

func (r ShardLeakResult) String() string {
	return fmt.Sprintf("shard leak audit: P=%d, %d accesses, histogram chi2 %.3f (critical %.3f), %d shards leaf-audited, pass=%v",
		r.Shards, r.Accesses, r.Chi2, r.Critical, len(r.Leaves), r.Pass())
}

// routeHistogram bins a block sequence by a routing function. The audit
// uses the production law (server.RouteBlock); tests substitute biased
// routers as negative controls.
func routeHistogram(blocks []int64, shards int, route func(block int64, shards int) (int, int64)) []uint64 {
	counts := make([]uint64, shards)
	for _, b := range blocks {
		shard, _ := route(b, shards)
		counts[shard]++
	}
	return counts
}

// shardHistogramChi2 compares an observed per-shard histogram against
// the production routing law's prediction for the same block sequence.
func shardHistogramChi2(observed []uint64, blocks []int64, shards int) (stat float64, df int) {
	predicted := routeHistogram(blocks, shards, server.RouteBlock)
	expected := make([]float64, shards)
	for i, c := range predicted {
		expected[i] = float64(c)
	}
	return ChiSquareExpected(observed, expected)
}

// MigratingLeakResult summarizes one mid-migration audit run: the
// deployment is frozen mid-reshard (dual routing at a fixed watermark),
// so the observable cells are the old fleet's From shards followed by
// the target fleet's To shards.
type MigratingLeakResult struct {
	From, To  int
	Watermark int64
	Accesses  int
	Observed  []uint64  // ops served per cell: From old-fleet cells, then To target cells
	Expected  []float64 // what the dual routing law predicts per cell
	Chi2      float64   // observed vs. expected (+Inf: op in a cell the law forbids)
	Critical  float64
	Leaves    []ObliviousResult // per-cell leaf uniformity (thin cells skipped)
}

// Pass reports whether the mid-migration leak is exactly the dual
// routing law's: the cell histogram within the critical band and every
// audited cell's leaf distribution uniform.
func (r MigratingLeakResult) Pass() bool {
	if r.Chi2 > r.Critical {
		return false
	}
	for _, l := range r.Leaves {
		if !l.Uniform() {
			return false
		}
	}
	return true
}

func (r MigratingLeakResult) String() string {
	return fmt.Sprintf("mid-migration leak audit: %d→%d at watermark %d, %d accesses, histogram chi2 %.3f (critical %.3f), %d cells leaf-audited, pass=%v",
		r.From, r.To, r.Watermark, r.Accesses, r.Chi2, r.Critical, len(r.Leaves), r.Pass())
}

// migratingHistogram bins a block sequence into the From+To cells the
// dual routing law (RouteBlockMigrating at the given watermark) sends
// them to. The audit compares the engines' counters against the law at
// the true watermark; tests recompute it at a wrong watermark as a
// negative control (mass appears in cells the law gives zero
// expectation, driving the statistic to +Inf).
func migratingHistogram(blocks []int64, watermark int64, from, to int) []float64 {
	cells := make([]float64, from+to)
	for _, b := range blocks {
		shard, _, target := server.RouteBlockMigrating(b, watermark, from, to)
		if target {
			cells[from+shard]++
		} else {
			cells[shard]++
		}
	}
	return cells
}

// CheckShardLeakMigrating audits the leakage bound of a deployment
// frozen MID-migration: a From-shard fleet with a To-shard target fleet
// installed behind dual routing at a fixed watermark (the state a live
// reshard serves from between copy ranges, held still so the histogram
// has a single law to match). The bound generalizes the static one:
//
//   - an observer of per-tree traffic learns which cell (fleet, shard)
//     every access lands in — exactly what RouteBlockMigrating reveals
//     about the block id given the public watermark — and must learn
//     nothing more;
//   - within each cell the revealed leaf sequence must stay chi-square
//     uniform under that tree's own seed (old-fleet trees under the
//     generation-0 seeds, target trees under the generation-1 seeds).
//
// The copy traffic itself is excluded by freezing the watermark: what
// is audited is the serving path's routing, the part an adversary
// watching a mid-migration trace actually correlates with block ids.
func CheckShardLeakMigrating(s core.Scheme, levels, from, to int, watermark int64, seed uint64, accesses int, w Workload) (MigratingLeakResult, error) {
	res := MigratingLeakResult{From: from, To: to, Watermark: watermark, Accesses: accesses}
	old := make([]server.Engine, from)
	for i := range old {
		o, err := aboram.New(aboram.Options{
			Scheme: s, Levels: levels,
			Seed:          server.ShardSeed(seed, i),
			EncryptionKey: oracleKey,
		})
		if err != nil {
			return res, fmt.Errorf("check: building shard %d: %w", i, err)
		}
		old[i] = o
	}
	sh, err := server.NewSharded(old, server.Config{Queue: 64, Batch: 8})
	if err != nil {
		return res, err
	}
	defer sh.Close()
	target := make([]server.Engine, to)
	for i := range target {
		o, err := aboram.New(aboram.Options{
			Scheme: s, Levels: levels,
			Seed:          server.ShardSeed(server.GenSeed(seed, 1), i),
			EncryptionKey: oracleKey,
		})
		if err != nil {
			return res, fmt.Errorf("check: building target shard %d: %w", i, err)
		}
		target[i] = o
	}
	// Install dual routing at the frozen watermark. The Resharder is
	// never run — no copier, no fences — so the deployment holds still
	// in the exact mid-migration state under audit. (Close stops the
	// never-started migration along with both fleets.)
	if _, err := sh.BeginReshard(target, server.ReshardConfig{Watermark: watermark, Gen: 1}); err != nil {
		return res, fmt.Errorf("check: freezing mid-migration state: %w", err)
	}

	// Drive the workload, recording the block sequence (for the cell
	// prediction) and each cell's local sequence (for the leaf audits).
	ctx := context.Background()
	n := sh.NumBlocks()
	blocks := make([]int64, accesses)
	locals := make([][]int64, from+to)
	for i := 0; i < accesses; i++ {
		blk := w(i) % n
		if blk < 0 {
			blk += n
		}
		blocks[i] = blk
		shard, local, isTarget := server.RouteBlockMigrating(blk, watermark, from, to)
		cell := shard
		if isTarget {
			cell = from + shard
		}
		locals[cell] = append(locals[cell], local)
		if err := sh.Access(ctx, blk); err != nil {
			return res, fmt.Errorf("check: access %d (block %d): %w", i, blk, err)
		}
	}

	// Side one: both fleets' served counters, cell for cell, against the
	// dual routing law. Cells the law gives zero expectation are dead
	// (ChiSquareExpected excludes them from df — and any observed op in
	// one is an immediate +Inf).
	res.Observed = make([]uint64, 0, from+to)
	for _, m := range sh.ShardMetrics() {
		res.Observed = append(res.Observed, m.Served())
	}
	for _, m := range sh.NextShardMetrics() {
		res.Observed = append(res.Observed, m.Served())
	}
	res.Expected = migratingHistogram(blocks, watermark, from, to)
	var df int
	res.Chi2, df = ChiSquareExpected(res.Observed, res.Expected)
	if df < 1 {
		df = 1
	}
	res.Critical = ChiSquareCritical(df, ZCrit999)

	// Side two: each cell's revealed leaf sequence must stay uniform
	// under its own tree's seed.
	for cell, seq := range locals {
		if len(seq) < 64 {
			continue
		}
		cellSeed := server.ShardSeed(seed, cell)
		if cell >= from {
			cellSeed = server.ShardSeed(server.GenSeed(seed, 1), cell-from)
		}
		leaf, err := CheckOblivious(s, core.DefaultOptions(levels, cellSeed), len(seq), func(j int) int64 { return seq[j] })
		if err != nil {
			return res, fmt.Errorf("check: cell %d leaf audit: %w", cell, err)
		}
		res.Leaves = append(res.Leaves, leaf)
	}
	return res, nil
}

// CheckShardLeak drives a real P-shard serving engine through `accesses`
// ops of the workload and audits the leak bound from both sides (see the
// package comment above). The returned result carries the verdict; the
// error covers build/serve failures and eviction-order violations inside
// the per-shard leaf audit.
func CheckShardLeak(s core.Scheme, levels, shards int, seed uint64, accesses int, w Workload) (ShardLeakResult, error) {
	res := ShardLeakResult{Shards: shards, Accesses: accesses}
	engines := make([]server.Engine, shards)
	for i := range engines {
		o, err := aboram.New(aboram.Options{
			Scheme: s, Levels: levels,
			Seed:          server.ShardSeed(seed, i),
			EncryptionKey: oracleKey,
		})
		if err != nil {
			return res, fmt.Errorf("check: building shard %d: %w", i, err)
		}
		engines[i] = o
	}
	sh, err := server.NewSharded(engines, server.Config{Queue: 64, Batch: 8})
	if err != nil {
		return res, err
	}
	defer sh.Close()

	// Drive the workload through the real router, recording the block
	// sequence (for the prediction) and each shard's local sequence (for
	// the per-shard leaf audit).
	ctx := context.Background()
	n := sh.NumBlocks()
	blocks := make([]int64, accesses)
	locals := make([][]int64, shards)
	for i := 0; i < accesses; i++ {
		blk := w(i) % n
		if blk < 0 {
			blk += n
		}
		blocks[i] = blk
		shard, local := server.RouteBlock(blk, shards)
		locals[shard] = append(locals[shard], local)
		if err := sh.Access(ctx, blk); err != nil {
			return res, fmt.Errorf("check: access %d (block %d): %w", i, blk, err)
		}
	}

	// Side one: the engine's own per-shard served counters against the
	// routing law's prediction.
	res.Observed = make([]uint64, shards)
	for i, m := range sh.ShardMetrics() {
		res.Observed[i] = m.Served()
	}
	res.Chi2, _ = shardHistogramChi2(res.Observed, blocks, shards)
	df := shards - 1
	if df < 1 {
		df = 1
	}
	res.Critical = ChiSquareCritical(df, ZCrit999)

	// Side two: each shard's revealed leaf sequence must stay uniform
	// under its own seed. Shards the workload barely touched are skipped
	// (too few samples for a meaningful histogram).
	for i := range locals {
		seq := locals[i]
		if len(seq) < 64 {
			continue
		}
		opt := core.DefaultOptions(levels, server.ShardSeed(seed, i))
		leaf, err := CheckOblivious(s, opt, len(seq), func(j int) int64 { return seq[j] })
		if err != nil {
			return res, fmt.Errorf("check: shard %d leaf audit: %w", i, err)
		}
		res.Leaves = append(res.Leaves, leaf)
	}
	return res, nil
}
