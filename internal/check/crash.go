package check

import (
	"bytes"
	"fmt"
	"strings"

	"repro/aboram"
	"repro/internal/durable"
	"repro/internal/faults"
	"repro/internal/rng"
	"repro/internal/vfs"
)

// This file is the kill-recover oracle for the durable engine: it drives
// a randomized op sequence against internal/durable through a
// fault-injecting filesystem, lets the injector "kill the process" at a
// seeded mutation count (mid-WAL-append, mid-snapshot-write, between
// publish steps — wherever the counter lands), reopens the directory the
// way a restarted daemon would, and checks the durability contract:
//
//   - every acknowledged write (Engine.Write returned nil) is present
//     after recovery, always;
//   - the single write in flight at the crash (returned an error) may
//     hold either its old or its new content, but nothing else;
//   - all other blocks are untouched.
//
// A schedule is a pure function of its seed, so a failing (seed, ops)
// pair is a repro, in the same spirit as the differential oracle above.

// CrashReport summarizes one seeded kill-recover schedule.
type CrashReport struct {
	Seed          uint64
	Rounds        int            // engine incarnations, crashed or clean
	Crashes       int            // injected kills (during serving or recovery)
	Sites         map[string]int // crash-site histogram, keyed by file kind
	AckedWrites   int            // writes acknowledged across all rounds
	Replayed      int            // WAL records replayed by recoveries
	TornTails     int            // recoveries that truncated a damaged record
	DeltasApplied int            // chain deltas applied across all recoveries
	DeltasSkipped int            // unreadable deltas recoveries stopped short of
	DeltasWritten uint64         // delta checkpoints published across all rounds
	Compactions   uint64         // live-WAL compaction runs across all rounds
}

func (r *CrashReport) String() string {
	return fmt.Sprintf("seed %d: %d rounds, %d crashes (sites %v), %d acked writes, %d replayed, %d torn tails, "+
		"%d deltas applied (%d skipped), %d deltas written, %d compactions",
		r.Seed, r.Rounds, r.Crashes, r.Sites, r.AckedWrites, r.Replayed, r.TornTails,
		r.DeltasApplied, r.DeltasSkipped, r.DeltasWritten, r.Compactions)
}

// crashSiteKind buckets an injector crash site by the file it hit, so
// reports and tests can assert coverage of every crash phase (WAL append
// or compaction rewrite, full-snapshot publish, delta publish) without
// depending on exact op strings. Compaction temps are named wal-*.tmp,
// so a kill inside a compaction rewrite lands in the "wal" bucket.
func crashSiteKind(site string) string {
	switch {
	case strings.Contains(site, "wal-"):
		return "wal"
	case strings.Contains(site, "snap-"):
		return "snap"
	case strings.Contains(site, "delta-"):
		return "delta"
	case strings.Contains(site, "reshard."):
		return "reshard" // reshard.tmp / reshard.log — the migration journal

	case site == "":
		return "none"
	default:
		return strings.Fields(site)[0]
	}
}

// pendingWrite is the op in flight at a crash: acknowledged to nobody,
// so recovery may legally surface either value.
type pendingWrite struct {
	block    int64
	old, new []byte
}

// crashOptions builds the engine configuration for one incarnation.
// SnapshotEvery is tiny so a schedule of a few hundred writes crosses
// many epoch rotations and the crash counter can land inside snapshot
// publishes, not just WAL appends. The delta variant is the incremental
// configuration: most rotations publish a delta, every third a full
// base, the live segment compacts every 5 appends, and publishes are
// synchronous so the whole schedule stays a pure function of its seed.
func crashOptions(dir string, seed uint64, fs vfs.FS, delta bool) durable.Options {
	opt := durable.Options{
		Dir:           dir,
		ORAM:          aboram.Options{Levels: 8, Seed: seed, EncryptionKey: oracleKey},
		SnapshotEvery: 8,
		FS:            fs,
	}
	if delta {
		opt.DeltaSnapshots = true
		opt.BaseEvery = 3
		opt.CompactEvery = 5
		opt.SyncPublish = true
	}
	return opt
}

// RunCrashSchedule runs one seeded schedule of totalOps operations in dir
// (which must be empty or a previous incarnation of the same schedule),
// crashing and recovering until the op budget is spent, then does a final
// clean recovery and full read-back. It returns the report, or an error
// describing the first contract violation.
func RunCrashSchedule(dir string, seed uint64, totalOps int) (*CrashReport, error) {
	return runCrashSchedule(dir, seed, totalOps, false)
}

// RunCrashScheduleDelta is RunCrashSchedule against the delta-snapshot
// engine configuration: incremental checkpoints chained on periodic full
// bases plus live-WAL compaction, so the seeded kills also land inside
// delta publishes and compaction rewrites. The durability contract being
// checked is identical.
func RunCrashScheduleDelta(dir string, seed uint64, totalOps int) (*CrashReport, error) {
	return runCrashSchedule(dir, seed, totalOps, true)
}

func runCrashSchedule(dir string, seed uint64, totalOps int, delta bool) (*CrashReport, error) {
	r := rng.New(seed ^ 0x6372617368) // decorrelate from the engine's protocol stream
	rep := &CrashReport{Seed: seed, Sites: make(map[string]int)}

	// The op stream is generated up front and consumed across crashes, so
	// the workload is identical no matter where the kills land.
	probe, err := aboram.New(aboram.Options{Levels: 8, Seed: seed, EncryptionKey: oracleKey})
	if err != nil {
		return nil, err
	}
	numBlocks, blockB := probe.NumBlocks(), probe.BlockSize()
	ops := GenOps(seed, totalOps, numBlocks)

	model := make(map[int64][]byte)
	var pending *pendingWrite
	next := 0 // index of the first unapplied op

	maxRounds := totalOps + 16 // a crash consumes no ops, so bound incarnations explicitly
	for next < len(ops) {
		if rep.Rounds >= maxRounds {
			return rep, fmt.Errorf("check: schedule %d made no progress after %d rounds", seed, rep.Rounds)
		}
		rep.Rounds++

		in := faults.New(faults.Config{
			Seed:       r.Uint64(),
			CrashAfter: 1 + int(r.Uint64n(60)),
			TornWrites: true,
		})
		eng, err := durable.Open(crashOptions(dir, seed, faults.WrapFS(vfs.OS{}, in), delta))
		if err != nil {
			if !in.Crashed() {
				return rep, fmt.Errorf("check: round %d: recovery failed without a crash: %w", rep.Rounds, err)
			}
			// Killed during recovery itself (replay or epoch publish):
			// nothing new was acknowledged, so the contract is unchanged;
			// the next incarnation picks the pieces up.
			rep.Crashes++
			rep.Sites[crashSiteKind(in.CrashSite())]++
			continue
		}
		rec := eng.Recovery()
		rep.Replayed += rec.RecordsReplayed
		rep.DeltasApplied += rec.DeltasApplied
		rep.DeltasSkipped += rec.DeltasSkipped
		if rec.TornTail {
			rep.TornTails++
		}

		if err := verifyRecovered(eng, model, &pending, blockB); err != nil {
			return rep, fmt.Errorf("check: round %d (recovery %+v): %w", rep.Rounds, rec, err)
		}

		crashed := false
		for next < len(ops) {
			op := ops[next]
			switch op.Kind {
			case OpWrite:
				data := Fill(blockB, op.Block, op.Fill)
				if err := eng.Write(op.Block, data); err != nil {
					if !in.Crashed() {
						return rep, fmt.Errorf("check: op %d: write failed without a crash: %w", next, err)
					}
					// Unacknowledged: either value is legal after recovery.
					pending = &pendingWrite{block: op.Block, old: model[op.Block], new: data}
					crashed = true
				} else {
					model[op.Block] = data
					rep.AckedWrites++
				}
			case OpRead:
				got, err := eng.Read(op.Block)
				if err != nil {
					if !in.Crashed() {
						return rep, fmt.Errorf("check: op %d: read failed without a crash: %w", next, err)
					}
					crashed = true
				} else if want := expect(model, blockB, op.Block); !bytes.Equal(got, want) {
					return rep, fmt.Errorf("check: op %d: read(%d) diverged from model pre-crash", next, op.Block)
				}
			default: // OpAccess and OpCheckpoint both become pattern-only touches
				if err := eng.Access(op.Block); err != nil {
					if !in.Crashed() {
						return rep, fmt.Errorf("check: op %d: access failed without a crash: %w", next, err)
					}
					crashed = true
				}
			}
			next++
			if crashed {
				break
			}
		}
		st := eng.Stats() // counters survive poisoning; Close discards nothing
		rep.DeltasWritten += st.DeltasWritten
		rep.Compactions += st.CompactionRuns
		eng.Close() // post-crash this reports ErrCrash; either way the incarnation is over
		if crashed {
			rep.Crashes++
			rep.Sites[crashSiteKind(in.CrashSite())]++
		}
	}

	// Final incarnation on the real filesystem: recovery must succeed and
	// the full model must read back.
	rep.Rounds++
	eng, err := durable.Open(crashOptions(dir, seed, vfs.OS{}, delta))
	if err != nil {
		return rep, fmt.Errorf("check: final recovery: %w", err)
	}
	defer eng.Close()
	rep.Replayed += eng.Recovery().RecordsReplayed
	rep.DeltasApplied += eng.Recovery().DeltasApplied
	rep.DeltasSkipped += eng.Recovery().DeltasSkipped
	if eng.Recovery().TornTail {
		rep.TornTails++
	}
	if err := verifyRecovered(eng, model, &pending, blockB); err != nil {
		return rep, fmt.Errorf("check: final recovery: %w", err)
	}
	return rep, nil
}

// verifyRecovered checks a freshly recovered engine against the
// acknowledged model: the pending (unacknowledged) write may read as
// either value — and is then pinned to whatever recovery chose — while
// every acknowledged block must match exactly.
func verifyRecovered(eng *durable.Engine, model map[int64][]byte, pending **pendingWrite, blockB int) error {
	if p := *pending; p != nil {
		got, err := eng.Read(p.block)
		if err != nil {
			return fmt.Errorf("reading pending block %d: %w", p.block, err)
		}
		old := p.old
		if old == nil {
			old = make([]byte, blockB)
		}
		switch {
		case bytes.Equal(got, p.new):
			model[p.block] = p.new
		case bytes.Equal(got, old):
			if p.old != nil {
				model[p.block] = p.old
			}
		default:
			return fmt.Errorf("pending block %d holds neither its old nor its new content", p.block)
		}
		*pending = nil
	}
	for blk, want := range model {
		got, err := eng.Read(blk)
		if err != nil {
			return fmt.Errorf("reading block %d: %w", blk, err)
		}
		if !bytes.Equal(got, want) {
			return fmt.Errorf("acknowledged write to block %d lost or corrupted after recovery", blk)
		}
	}
	return nil
}
