package check

import (
	"fmt"
	"math/bits"

	"repro/internal/core"
	"repro/internal/memop"
	"repro/internal/ringoram"
	"repro/internal/rng"
)

// Workload chooses the block touched by access i. Implementations may
// return any non-negative value; the checker reduces it modulo the
// instance's block count.
type Workload func(i int) int64

// HotBlock is the adversarial workload for the uniformity test: every
// access touches the same block, so any leakage of the position map
// through the observable leaf sequence would show up as skew.
func HotBlock(block int64) Workload {
	return func(int) int64 { return block }
}

// UniformBlocks touches blocks uniformly at random (deterministically
// from seed).
func UniformBlocks(seed uint64) Workload {
	r := rng.New(seed ^ 0x756e69666f726d) // decouple from protocol seeding
	return func(int) int64 { return int64(r.Uint64() >> 1) }
}

// ObliviousResult summarizes a statistical-obliviousness run: the
// chi-square statistic of the observed leaf histogram against uniformity,
// the critical value it must stay under, and how many EvictPath
// operations were verified to follow the reverse-lexicographic order.
type ObliviousResult struct {
	Scheme        core.Scheme
	Accesses      int
	Bins          int
	Chi2          float64
	Critical      float64
	EvictsChecked int
}

// Uniform reports whether the observed leaf distribution is consistent
// with uniformity at the α = 0.001 level.
func (r ObliviousResult) Uniform() bool { return r.Chi2 <= r.Critical }

// CheckOblivious drives `accesses` online accesses of the given workload
// through a freshly built scheme instance and validates the two
// observable-pattern properties AB-ORAM must preserve (§VI-A):
//
//   - the leaf revealed by each online ReadPath — recovered purely from
//     the emitted memory traffic, as a bus snooper would — is uniform
//     over the tree's paths (Pearson chi-square at α = 0.001, leaves
//     binned to keep expected counts usable at any scale), and
//   - every EvictPath drains exactly the path dictated by the
//     reverse-lexicographic order, in root-to-leaf sequence.
//
// An eviction-order violation returns an error immediately; the
// uniformity verdict is in the result for the caller to judge.
func CheckOblivious(s core.Scheme, opt core.Options, accesses int, w Workload) (ObliviousResult, error) {
	res := ObliviousResult{Scheme: s, Accesses: accesses}
	cfg, _, err := core.Build(s, opt)
	if err != nil {
		return res, err
	}
	if cfg.TreetopLevels >= cfg.Levels {
		return res, fmt.Errorf("check: treetop %d covers all %d levels; no observable traffic", cfg.TreetopLevels, cfg.Levels)
	}
	o, err := ringoram.New(cfg)
	if err != nil {
		return res, err
	}
	geom := o.Geometry()
	metaBase := ringoram.SpaceBytesStatic(cfg)
	blockB := uint64(cfg.BlockB)
	leafLevel := cfg.Levels - 1
	leafStart := geom.LevelStart(leafLevel)

	numPaths := uint64(geom.NumPaths())
	bins, shift := binLeaves(numPaths, accesses)
	counts := make([]uint64, bins)
	res.Bins = int(bins)

	var evictGen int64
	var pathBuf []int64
	for i := 0; i < accesses; i++ {
		blk := w(i) % cfg.NumBlocks
		ops, err := o.Access(blk)
		if err != nil {
			return res, err
		}
		// ops[0] is the online ReadPath's metadata op: one read per
		// off-chip bucket, root to leaf. Its last read names the leaf.
		if len(ops) == 0 || ops[0].Kind != memop.KindReadPath || len(ops[0].Reads) == 0 {
			return res, fmt.Errorf("check: access %d emitted no observable ReadPath metadata", i)
		}
		leafMeta := ops[0].Reads[len(ops[0].Reads)-1]
		if leafMeta < metaBase {
			return res, fmt.Errorf("check: access %d: trailing ReadPath read %#x below metadata base %#x", i, leafMeta, metaBase)
		}
		bucket := int64((leafMeta - metaBase) / blockB)
		if geom.LevelOf(bucket) != leafLevel {
			return res, fmt.Errorf("check: access %d: ReadPath bottomed out at bucket %d (level %d), not a leaf", i, bucket, geom.LevelOf(bucket))
		}
		counts[uint64(bucket-leafStart)>>shift]++

		// Every EvictPath read op must drain the reverse-lexicographic
		// path for its generation, bucket by bucket.
		for _, op := range ops {
			if op.Kind != memop.KindEvictPath || len(op.Reads) == 0 {
				continue
			}
			p := geom.EvictPath(evictGen)
			pathBuf = geom.PathBuckets(p, pathBuf[:0])
			want := pathBuf[cfg.TreetopLevels:]
			j := 0
			for _, addr := range op.Reads {
				if addr < metaBase {
					continue // a block slot read, not bucket metadata
				}
				b := int64((addr - metaBase) / blockB)
				if j >= len(want) || b != want[j] {
					return res, fmt.Errorf("check: eviction %d visits bucket %d, want path %d (reverse-lex of gen %d)", evictGen, b, p, evictGen)
				}
				j++
			}
			if j != len(want) {
				return res, fmt.Errorf("check: eviction %d drained %d off-chip buckets, want %d", evictGen, j, len(want))
			}
			evictGen++
			res.EvictsChecked++
		}
	}
	res.Chi2, _ = ChiSquare(counts)
	res.Critical = ChiSquareCritical(int(bins)-1, ZCrit999)
	return res, nil
}

// binLeaves picks a power-of-two histogram width: fine enough to expose
// skew, coarse enough that expected counts stay ≥ ~8 per cell (the usual
// chi-square validity rule) for any tree size the tests use. shift is the
// number of low path bits folded into each bin.
func binLeaves(numPaths uint64, accesses int) (bins uint64, shift uint) {
	bins = numPaths
	if byCount := uint64(accesses / 8); byCount < bins {
		bins = byCount
	}
	if bins > 1024 {
		bins = 1024
	}
	if bins < 2 {
		bins = 2
	}
	// Round down to a power of two so binning is a pure bit shift.
	bins = uint64(1) << (63 - uint(bits.LeadingZeros64(bins)))
	shift = uint(bits.TrailingZeros64(numPaths)) - uint(bits.TrailingZeros64(bins))
	return bins, shift
}
