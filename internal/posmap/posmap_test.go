package posmap

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/tree"
)

func newMap(t *testing.T, blocks int64, plbEntries int) *Map {
	t.Helper()
	m, err := New(tree.MustGeometry(8), blocks, rng.New(1), plbEntries)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	if _, err := New(tree.MustGeometry(4), 0, rng.New(1), 0); err == nil {
		t.Fatal("expected error for zero blocks")
	}
}

func TestInitialPathsInRange(t *testing.T) {
	g := tree.MustGeometry(8)
	m := newMap(t, 10000, 0)
	for b := int64(0); b < m.NumBlocks(); b++ {
		if p := m.Peek(b); p < 0 || p >= g.NumPaths() {
			t.Fatalf("block %d mapped to invalid path %d", b, p)
		}
	}
}

func TestInitialPathsUniform(t *testing.T) {
	g := tree.MustGeometry(4) // 8 paths
	m, err := New(g, 80000, rng.New(2), 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, g.NumPaths())
	for b := int64(0); b < m.NumBlocks(); b++ {
		counts[m.Peek(b)]++
	}
	want := 80000.0 / float64(g.NumPaths())
	for p, c := range counts {
		if math.Abs(float64(c)-want) > want*0.1 {
			t.Errorf("path %d has %d blocks, want ~%.0f", p, c, want)
		}
	}
}

func TestLookupAndRemap(t *testing.T) {
	m := newMap(t, 100, 0)
	p0, hit := m.Lookup(5)
	if !hit {
		t.Fatal("PLB-less lookup must report hit")
	}
	if p0 != m.Peek(5) {
		t.Fatal("Lookup disagrees with Peek")
	}
	changed := false
	for i := 0; i < 50; i++ {
		if m.Remap(5) != p0 {
			changed = true
		}
	}
	if !changed {
		t.Fatal("50 remaps never changed the path")
	}
	if m.Lookups() != 1 || m.Remaps() != 50 {
		t.Fatalf("counters: lookups=%d remaps=%d", m.Lookups(), m.Remaps())
	}
}

func TestRemapUpdatesLookup(t *testing.T) {
	m := newMap(t, 10, 0)
	np := m.Remap(3)
	if got, _ := m.Lookup(3); got != np {
		t.Fatalf("Lookup %d after Remap to %d", got, np)
	}
}

func TestPLBHitsOnLocality(t *testing.T) {
	m := newMap(t, 1<<20, 1024)
	// First touch misses, repeats hit.
	if _, hit := m.Lookup(7); hit {
		t.Fatal("cold PLB lookup hit")
	}
	if _, hit := m.Lookup(7); !hit {
		t.Fatal("warm PLB lookup missed")
	}
	if m.PLBHitRate() != 0.5 {
		t.Fatalf("hit rate %v, want 0.5", m.PLBHitRate())
	}
}

func TestPLBConflictEviction(t *testing.T) {
	m := newMap(t, 1<<20, 16) // 16-entry direct-mapped
	m.Lookup(0)
	m.Lookup(16) // same PLB index, evicts 0
	if _, hit := m.Lookup(0); hit {
		t.Fatal("conflicting tag survived")
	}
}

func TestPLBDisabledHitRate(t *testing.T) {
	m := newMap(t, 10, 0)
	m.Lookup(1)
	if m.PLBHitRate() != 1 {
		t.Fatal("disabled PLB should report hit rate 1")
	}
}

func TestDeterministicAcrossSeeds(t *testing.T) {
	g := tree.MustGeometry(8)
	m1, _ := New(g, 1000, rng.New(9), 0)
	m2, _ := New(g, 1000, rng.New(9), 0)
	for b := int64(0); b < 1000; b++ {
		if m1.Peek(b) != m2.Peek(b) {
			t.Fatal("same seed produced different initial mapping")
		}
	}
	for i := 0; i < 100; i++ {
		if m1.Remap(int64(i)) != m2.Remap(int64(i)) {
			t.Fatal("same seed produced different remap sequence")
		}
	}
}
