// Package posmap implements the ORAM position map — the trusted mapping
// from block ID to tree path — together with a model of the on-chip
// position-map lookaside buffer (PLB) from Table III of the paper.
//
// Following the paper's methodology (and the USIMM-based ORAM literature it
// builds on), position-map lookups are serviced on-chip: the 512 KB PosMap
// plus 64 KB PLB hold the hot mapping state, and recursive position-map
// ORAMs are out of scope. The PLB model still tracks hit rates so
// experiments can report locality, and misses can be charged a fixed
// on-chip latency by the timing layer.
package posmap

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/tree"
)

// Map maps every block ID to its current path and handles random remapping.
type Map struct {
	geom tree.Geometry
	pos  []int64
	r    *rng.Source

	plb *plb

	lookups uint64
	remaps  uint64

	// Dirty tracking for incremental checkpoints: Remap stamps the entry
	// with the current epoch clock, Cut closes the epoch, CaptureDirty
	// collects the entries remapped since a cut. Volatile — full
	// checkpoints (Positions/SetPositions) carry no stamps.
	clock      uint64
	entryEpoch []uint64
}

// New creates a position map for numBlocks blocks, each assigned a uniform
// random initial path drawn from r. plbEntries > 0 enables the PLB model.
func New(g tree.Geometry, numBlocks int64, r *rng.Source, plbEntries int) (*Map, error) {
	if numBlocks <= 0 {
		return nil, fmt.Errorf("posmap: non-positive block count %d", numBlocks)
	}
	m := &Map{
		geom:       g,
		pos:        make([]int64, numBlocks),
		r:          r,
		clock:      1,
		entryEpoch: make([]uint64, numBlocks),
	}
	for i := range m.pos {
		m.pos[i] = int64(r.Uint64n(uint64(g.NumPaths())))
	}
	if plbEntries > 0 {
		m.plb = newPLB(plbEntries)
	}
	return m, nil
}

// NumBlocks returns the number of mapped blocks.
func (m *Map) NumBlocks() int64 { return int64(len(m.pos)) }

// Lookup returns the block's current path and whether the PLB hit.
// With the PLB disabled, hit is always true (pure on-chip PosMap).
func (m *Map) Lookup(block int64) (path int64, plbHit bool) {
	m.lookups++
	plbHit = true
	if m.plb != nil {
		plbHit = m.plb.touch(block)
	}
	return m.pos[block], plbHit
}

// Remap assigns the block a fresh uniform random path and returns it.
// Ring ORAM remaps on every online access (§III-B block remap).
func (m *Map) Remap(block int64) int64 {
	m.remaps++
	p := int64(m.r.Uint64n(uint64(m.geom.NumPaths())))
	m.pos[block] = p
	m.entryEpoch[block] = m.clock
	return p
}

// Peek returns the current path without touching statistics or the PLB;
// for assertions and eviction eligibility checks.
func (m *Map) Peek(block int64) int64 { return m.pos[block] }

// Lookups returns the total Lookup count.
func (m *Map) Lookups() uint64 { return m.lookups }

// Remaps returns the total Remap count.
func (m *Map) Remaps() uint64 { return m.remaps }

// PLBHitRate returns the fraction of lookups that hit the PLB, or 1 when
// the PLB model is disabled.
func (m *Map) PLBHitRate() float64 {
	if m.plb == nil || m.plb.hits+m.plb.misses == 0 {
		return 1
	}
	return float64(m.plb.hits) / float64(m.plb.hits+m.plb.misses)
}

// plb is a direct-mapped tag cache over block IDs: a cheap stand-in for
// the 64 KB PLB that still produces realistic hit/miss streams for
// temporally local workloads.
type plb struct {
	tags         []int64
	hits, misses uint64
}

func newPLB(entries int) *plb {
	// Round up to a power of two for mask indexing.
	n := 1
	for n < entries {
		n <<= 1
	}
	t := make([]int64, n)
	for i := range t {
		t[i] = -1
	}
	return &plb{tags: t}
}

func (p *plb) touch(block int64) bool {
	idx := int(uint64(block) & uint64(len(p.tags)-1))
	if p.tags[idx] == block {
		p.hits++
		return true
	}
	p.tags[idx] = block
	p.misses++
	return false
}

// Positions returns a copy of the full block-to-path mapping, for
// checkpointing.
func (m *Map) Positions() []int64 {
	out := make([]int64, len(m.pos))
	copy(out, m.pos)
	return out
}

// SetPositions restores a mapping captured by Positions. The PLB and the
// lookup/remap counters reset: they are measurement state, not protocol
// state.
func (m *Map) SetPositions(pos []int64) error {
	if len(pos) != len(m.pos) {
		return fmt.Errorf("posmap: restoring %d positions into a map of %d", len(pos), len(m.pos))
	}
	for _, p := range pos {
		if p < 0 || p >= m.geom.NumPaths() {
			return fmt.Errorf("posmap: restored path %d out of range", p)
		}
	}
	copy(m.pos, pos)
	return nil
}

// Rand exposes the remap random stream so checkpointing can preserve the
// exact sequence of future path assignments.
func (m *Map) Rand() *rng.Source { return m.r }

// Cut closes the current mutation epoch and opens the next, returning
// the epoch just closed (the `since` for a later CaptureDirty).
func (m *Map) Cut() uint64 {
	e := m.clock
	m.clock++
	return e
}

// CaptureDirty returns the (block, path) pairs remapped after `since`
// (exclusive), in ascending block order. since=0 captures only entries
// remapped at least once — initial random assignments are never
// stamped, so full captures still go through Positions.
func (m *Map) CaptureDirty(since uint64) (blocks, paths []int64) {
	for b := range m.entryEpoch {
		if m.entryEpoch[b] <= since {
			continue
		}
		blocks = append(blocks, int64(b))
		paths = append(paths, m.pos[b])
	}
	return blocks, paths
}

// SetPosition installs one entry of a captured delta, with the same
// range validation as SetPositions.
func (m *Map) SetPosition(block, path int64) error {
	if block < 0 || block >= m.NumBlocks() {
		return fmt.Errorf("posmap: restored block %d out of range", block)
	}
	if path < 0 || path >= m.geom.NumPaths() {
		return fmt.Errorf("posmap: restored path %d out of range", path)
	}
	m.pos[block] = path
	m.entryEpoch[block] = m.clock
	return nil
}
