package security

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/trace"
)

func TestChance(t *testing.T) {
	if Chance(24) != 1.0/24 {
		t.Fatal("chance wrong")
	}
}

func TestSuccessRateEmpty(t *testing.T) {
	if (Result{}).SuccessRate() != 0 {
		t.Fatal("empty result rate must be 0")
	}
}

func TestAttackNearChanceBaselineAndAB(t *testing.T) {
	opt := core.DefaultOptions(10, 5)
	bench, _ := trace.Find("x264")
	for _, s := range []core.Scheme{core.SchemeBaseline, core.SchemeAB} {
		o, _, err := core.New(s, opt)
		if err != nil {
			t.Fatal(err)
		}
		gen, _ := trace.NewGenerator(bench, 3)
		res, err := Attack(o, gen, 8000, 17)
		if err != nil {
			t.Fatal(err)
		}
		if res.ReadPaths != 8000 {
			t.Fatalf("%s: observed %d readPaths", s, res.ReadPaths)
		}
		chance := Chance(10)
		got := res.SuccessRate()
		// 8000 trials at p=0.1: sigma ~ 0.0034; allow 5 sigma plus the
		// stash-hit depression.
		if math.Abs(got-chance) > 0.03 {
			t.Errorf("%s: success rate %v too far from chance %v", s, got, chance)
		}
	}
}

// A broken (leaky) protocol would let the attacker do significantly better
// than chance. Simulate the leak by always "guessing" the true level and
// confirm the measurement machinery would catch it — i.e., that real
// blocks are actually served from buckets, not all from the stash.
func TestAttackGroundTruthPopulated(t *testing.T) {
	opt := core.DefaultOptions(10, 5)
	o, _, err := core.New(core.SchemeBaseline, opt)
	if err != nil {
		t.Fatal(err)
	}
	bench, _ := trace.Find("mcf")
	gen, _ := trace.NewGenerator(bench, 5)
	n := uint64(o.Config().NumBlocks)
	served := 0
	for i := 0; i < 2000; i++ {
		if _, err := o.Access(int64(gen.Next().Block() % n)); err != nil {
			t.Fatal(err)
		}
		if o.LastServedLevel() >= 0 {
			served++
		}
	}
	if served < 1500 {
		t.Fatalf("only %d/2000 accesses served from the tree; ground truth degenerate", served)
	}
}
