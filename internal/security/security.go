// Package security implements the paper's empirical security analysis
// (§VI-C, Fig 7): an attacker observing the memory bus watches every
// ReadPath — L indistinguishable block reads, one per bucket along the
// path — and guesses which one returned the real block. If the protocol
// leaks nothing, the attacker does no better than chance, 1/L; the
// experiment verifies AB-ORAM preserves this bound.
package security

import (
	"fmt"

	"repro/internal/ringoram"
	"repro/internal/rng"
	"repro/internal/trace"
)

// Result summarizes one attack run.
type Result struct {
	ReadPaths uint64
	Correct   uint64
}

// SuccessRate returns correct guesses / observed ReadPaths.
func (r Result) SuccessRate() float64 {
	if r.ReadPaths == 0 {
		return 0
	}
	return float64(r.Correct) / float64(r.ReadPaths)
}

// Chance returns the blind-guess baseline 1/L for a tree with L levels.
func Chance(levels int) float64 { return 1 / float64(levels) }

// Attack replays a benchmark trace against the ORAM while an attacker
// guesses, uniformly at random, which per-bucket read of each online
// ReadPath carried the real block. The ground truth is the level that
// actually served the block (no level when the stash had it — then every
// guess is wrong, which only lowers the attacker's rate).
func Attack(o *ringoram.ORAM, gen *trace.Generator, accesses int, seed uint64) (Result, error) {
	attacker := rng.New(seed)
	levels := o.Config().Levels
	n := uint64(o.Config().NumBlocks)
	var res Result
	for i := 0; i < accesses; i++ {
		req := gen.Next()
		blk := int64(req.Block() % n)
		if _, err := o.Access(blk); err != nil {
			return Result{}, fmt.Errorf("security: %w", err)
		}
		res.ReadPaths++
		if attacker.Intn(levels) == o.LastServedLevel() {
			res.Correct++
		}
	}
	return res, nil
}
