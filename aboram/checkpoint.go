package aboram

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/ringoram"
	"repro/internal/secmem"
)

// image is the on-disk form of a full instance checkpoint: protocol state,
// the DeadQ contents (DR/AB schemes), and the encrypted store (when the
// data plane is active). The AES key is never serialized; Load re-derives
// the cipher from the Options the caller supplies.
type image struct {
	Scheme Scheme
	Levels int
	Seed   uint64

	Protocol *ringoram.Checkpoint
	DeadQ    map[int][]ringoram.SlotRef
	Memory   *secmem.State
}

// Save writes a complete checkpoint of the instance. The stream contains
// ciphertext, versions, and protocol metadata but no key material: it is
// safe to store on the same untrusted medium the ORAM itself protects
// against, with the same caveats as any at-rest image (it reveals the
// instant's physical occupancy pattern, which the threat model already
// grants the attacker).
func (o *ORAM) Save(w io.Writer) error {
	img := image{
		Protocol: o.inner.Checkpoint(),
	}
	if o.mem != nil {
		img.Memory = o.mem.State()
	}
	if o.dq != nil {
		img.DeadQ = o.dq.Snapshot()
	}
	return gob.NewEncoder(w).Encode(&img)
}

// Load restores an instance saved with Save. opt must describe the same
// configuration the instance was created with (scheme, levels, seed), and
// must carry the same EncryptionKey if the saved instance was encrypted.
func Load(opt Options, r io.Reader) (*ORAM, error) {
	var img image
	if err := gob.NewDecoder(r).Decode(&img); err != nil {
		return nil, fmt.Errorf("aboram: decoding checkpoint: %w", err)
	}
	if opt.Scheme == "" {
		opt.Scheme = SchemeAB
	}
	if opt.Levels == 0 {
		opt.Levels = 16
	}
	cfg, dq, err := core.Build(opt.Scheme, core.DefaultOptions(opt.Levels, opt.Seed))
	if err != nil {
		return nil, err
	}
	cfg.XORRead = opt.XORRead
	o := &ORAM{dq: dq, xor: opt.XORRead}
	if img.Memory != nil {
		if opt.EncryptionKey == nil {
			return nil, fmt.Errorf("aboram: checkpoint is encrypted; Options.EncryptionKey required")
		}
		mem, err := secmem.Restore(opt.EncryptionKey, img.Memory)
		if err != nil {
			return nil, err
		}
		cfg.Data = mem
		o.mem = mem
	} else if opt.EncryptionKey != nil {
		return nil, fmt.Errorf("aboram: checkpoint has no data plane but a key was supplied")
	}
	inner, err := ringoram.Restore(cfg, img.Protocol)
	if err != nil {
		return nil, err
	}
	o.inner = inner
	if dq != nil && img.DeadQ != nil {
		if err := dq.Restore(img.DeadQ); err != nil {
			return nil, err
		}
	}
	return o, nil
}
