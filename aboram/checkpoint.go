package aboram

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/ringoram"
	"repro/internal/secmem"
)

// image is the on-disk form of a full instance checkpoint: protocol state,
// the DeadQ contents (DR/AB schemes), and the encrypted store (when the
// data plane is active). The AES key is never serialized; Load re-derives
// the cipher from the Options the caller supplies.
type image struct {
	Scheme Scheme
	Levels int
	Seed   uint64

	Protocol *ringoram.Checkpoint
	DeadQ    map[int][]ringoram.SlotRef
	Memory   *secmem.State
}

// Save writes a complete checkpoint of the instance. The stream contains
// ciphertext, versions, and protocol metadata but no key material: it is
// safe to store on the same untrusted medium the ORAM itself protects
// against, with the same caveats as any at-rest image (it reveals the
// instant's physical occupancy pattern, which the threat model already
// grants the attacker).
func (o *ORAM) Save(w io.Writer) error {
	img := image{
		Protocol: o.inner.Checkpoint(),
	}
	if o.mem != nil {
		img.Memory = o.mem.State()
	}
	if o.dq != nil {
		img.DeadQ = o.dq.Snapshot()
	}
	return gob.NewEncoder(w).Encode(&img)
}

// Fingerprint returns a deterministic digest of the complete instance
// state — everything Save captures. Save's byte stream is NOT canonical
// (gob writes the stash and DeadQ maps in Go's randomized iteration
// order), so state equality must be judged on fingerprints, not image
// bytes: the maps are folded in here in sorted key order. Two instances
// with equal fingerprints are byte-for-byte restorable to the same
// state; the isolation checks in internal/check are built on this.
func (o *ORAM) Fingerprint() ([sha256.Size]byte, error) {
	var out [sha256.Size]byte
	h := sha256.New()
	enc := gob.NewEncoder(h)

	cp := o.inner.Checkpoint()
	stash := cp.StashData
	cp.StashData = nil // folded canonically below
	if err := enc.Encode(cp); err != nil {
		return out, fmt.Errorf("aboram: fingerprinting protocol state: %w", err)
	}
	stashBlocks := make([]int64, 0, len(stash))
	for blk := range stash {
		stashBlocks = append(stashBlocks, blk)
	}
	sort.Slice(stashBlocks, func(i, j int) bool { return stashBlocks[i] < stashBlocks[j] })
	for _, blk := range stashBlocks {
		binary.Write(h, binary.BigEndian, blk)
		binary.Write(h, binary.BigEndian, uint64(len(stash[blk])))
		h.Write(stash[blk])
	}

	if o.mem != nil {
		if err := enc.Encode(o.mem.State()); err != nil {
			return out, fmt.Errorf("aboram: fingerprinting data plane: %w", err)
		}
	}
	if o.dq != nil {
		dq := o.dq.Snapshot()
		levels := make([]int, 0, len(dq))
		for lvl := range dq {
			levels = append(levels, lvl)
		}
		sort.Ints(levels)
		for _, lvl := range levels {
			binary.Write(h, binary.BigEndian, int64(lvl))
			if err := enc.Encode(dq[lvl]); err != nil {
				return out, fmt.Errorf("aboram: fingerprinting DeadQ level %d: %w", lvl, err)
			}
		}
	}
	copy(out[:], h.Sum(nil))
	return out, nil
}

// Load restores an instance saved with Save. opt must describe the same
// configuration the instance was created with (scheme, levels, seed), and
// must carry the same EncryptionKey if the saved instance was encrypted.
func Load(opt Options, r io.Reader) (*ORAM, error) {
	var img image
	if err := gob.NewDecoder(r).Decode(&img); err != nil {
		return nil, fmt.Errorf("aboram: decoding checkpoint: %w", err)
	}
	if opt.Scheme == "" {
		opt.Scheme = SchemeAB
	}
	if opt.Levels == 0 {
		opt.Levels = 16
	}
	cfg, dq, err := core.Build(opt.Scheme, core.DefaultOptions(opt.Levels, opt.Seed))
	if err != nil {
		return nil, err
	}
	cfg.XORRead = opt.XORRead
	o := &ORAM{dq: dq, xor: opt.XORRead}
	if img.Memory != nil {
		if opt.EncryptionKey == nil {
			return nil, fmt.Errorf("aboram: checkpoint is encrypted; Options.EncryptionKey required")
		}
		mem, err := secmem.Restore(opt.EncryptionKey, img.Memory)
		if err != nil {
			return nil, err
		}
		cfg.Data = mem
		o.mem = mem
	} else if opt.EncryptionKey != nil {
		return nil, fmt.Errorf("aboram: checkpoint has no data plane but a key was supplied")
	}
	inner, err := ringoram.Restore(cfg, img.Protocol)
	if err != nil {
		return nil, err
	}
	o.inner = inner
	if dq != nil && img.DeadQ != nil {
		if err := dq.Restore(img.DeadQ); err != nil {
			return nil, err
		}
	}
	return o, nil
}
