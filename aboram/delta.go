package aboram

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/ringoram"
	"repro/internal/rng"
	"repro/internal/secmem"
	"repro/internal/stash"
)

// Delta checkpoints: SaveDelta writes only the state mutated since an
// epoch cut, so a durability layer can checkpoint at O(dirty set)
// instead of O(tree). The stream is a sequence of CRC-framed records —
// each frame is `u32 length | u32 CRC-32C | body`, body is one tag byte
// plus a gob payload — terminated by an explicit end marker, so a torn
// tail is detected instead of silently truncating state. ApplyDelta
// decodes and CRC-verifies the whole stream before mutating anything;
// semantic validation failures mid-apply leave the instance undefined
// and callers must rebuild from the base image (the durable recovery
// path does exactly that).
//
// Record tags, in stream order:
//
//	'H'  header: geometry handshake + the epoch window [Since, Cut]
//	'B'  bucket batch ([]ringoram.BucketDelta), repeated
//	'P'  position-map batch (parallel block/path slices), repeated
//	'M'  encrypted-store slot batch (*secmem.SlotDelta), repeated
//	'S'  full stash + stash data plane (always present: small, and its
//	     absence must mean "empty", never "unchanged")
//	'X'  misc scalars: counters, tallies, both random streams
//	'D'  full DeadQ snapshot (DR/AB schemes only)
//	'E'  end marker — a stream without one is torn
const (
	deltaTagHeader = 'H'
	deltaTagBucket = 'B'
	deltaTagPos    = 'P'
	deltaTagMem    = 'M'
	deltaTagStash  = 'S'
	deltaTagMisc   = 'X'
	deltaTagDeadQ  = 'D'
	deltaTagEnd    = 'E'
)

// maxDeltaBody caps a single record body so a hostile length prefix
// cannot force an arbitrary allocation before the CRC is checked.
const maxDeltaBody = 1 << 24

// Batch sizes keep every record comfortably under maxDeltaBody at any
// supported geometry while still amortizing the frame overhead.
const (
	deltaBucketBatch = 1024
	deltaSlotBatch   = 8192
	deltaPosBatch    = 8192
)

var deltaCRC = crc32.MakeTable(crc32.Castagnoli)

type deltaHeader struct {
	Levels    int
	Since     uint64
	Cut       uint64
	Encrypted bool
	HasDeadQ  bool
}

type deltaPos struct {
	Blocks []int64
	Paths  []int64
}

type deltaStash struct {
	Stash     []stash.Entry
	StashData map[int64][]byte
}

type deltaMisc struct {
	EvictGen       int64
	Stats          ringoram.Stats
	ReshufPerLevel []uint64
	DeadPerLevel   []uint64
	Rng            *rng.Source
	PosRng         *rng.Source
}

// CutEpoch closes the current mutation epoch across every tracked
// component (protocol engine, position map, encrypted store) and
// returns it. Mutations from now on belong to the next epoch; a later
// SaveDelta(w, cut) captures exactly them. All component clocks start
// at 1 and only advance here, so one epoch value addresses them all.
func (o *ORAM) CutEpoch() uint64 {
	if o.mem != nil {
		o.mem.Cut()
	}
	return o.inner.Cut()
}

// DeltaSnapshot is a captured-but-not-yet-encoded delta checkpoint:
// self-owned copies of everything mutated in one epoch window, safe to
// Encode from another goroutine while the instance keeps serving. The
// split is what makes checkpoints non-blocking — the serving pause
// holds only the O(dirty set) memory capture; the gob encode (the
// expensive half) runs at publish time.
type DeltaSnapshot struct {
	hdr    deltaHeader
	d      *ringoram.Delta
	mem    *secmem.SlotDelta
	blockB int
	deadq  map[int][]ringoram.SlotRef
}

// CaptureDelta closes the current epoch and captures everything mutated
// after epoch `since` (exclusive) into a self-owned snapshot, returning
// it with the cut: pass the cut as `since` to the next capture to chain
// deltas gap-free. since=0 captures all mutations since construction or
// the last Load/ApplyDelta rebuild — which is why a durability layer
// re-bases with a full Save after recovery instead of persisting epoch
// clocks.
func (o *ORAM) CaptureDelta(since uint64) (*DeltaSnapshot, uint64, error) {
	cut := o.CutEpoch()
	if since > cut {
		return nil, 0, fmt.Errorf("aboram: delta since epoch %d is in the future (cut %d)", since, cut)
	}
	d := o.inner.CaptureDelta(since)
	// The protocol capture aliases the live random streams (they are the
	// only part it does not copy); the snapshot must own them so a
	// background Encode cannot race the next access.
	r, pr := *d.Rng, *d.PosRng
	d.Rng, d.PosRng = &r, &pr
	s := &DeltaSnapshot{
		hdr: deltaHeader{
			Levels:    d.Levels,
			Since:     since,
			Cut:       cut,
			Encrypted: o.mem != nil,
			HasDeadQ:  o.dq != nil,
		},
		d: d,
	}
	if o.mem != nil {
		s.mem = o.mem.CaptureDirty(since)
		s.blockB = o.mem.BlockBytes()
	}
	if o.dq != nil {
		s.deadq = o.dq.Snapshot()
	}
	return s, cut, nil
}

// Encode writes the snapshot as a SaveDelta stream.
func (s *DeltaSnapshot) Encode(w io.Writer) error {
	d := s.d
	if err := writeDeltaFrame(w, deltaTagHeader, &s.hdr); err != nil {
		return err
	}
	for i := 0; i < len(d.Buckets); i += deltaBucketBatch {
		end := min(i+deltaBucketBatch, len(d.Buckets))
		if err := writeDeltaFrame(w, deltaTagBucket, d.Buckets[i:end]); err != nil {
			return err
		}
	}
	for i := 0; i < len(d.PosBlocks); i += deltaPosBatch {
		end := min(i+deltaPosBatch, len(d.PosBlocks))
		p := deltaPos{Blocks: d.PosBlocks[i:end], Paths: d.PosPaths[i:end]}
		if err := writeDeltaFrame(w, deltaTagPos, &p); err != nil {
			return err
		}
	}
	if s.mem != nil {
		for i := 0; i < len(s.mem.Idx); i += deltaSlotBatch {
			end := min(i+deltaSlotBatch, len(s.mem.Idx))
			chunk := secmem.SlotDelta{
				Idx:      s.mem.Idx[i:end],
				Versions: s.mem.Versions[i:end],
				Written:  s.mem.Written[i:end],
				Data:     s.mem.Data[i*s.blockB : end*s.blockB],
			}
			if err := writeDeltaFrame(w, deltaTagMem, &chunk); err != nil {
				return err
			}
		}
	}
	st := deltaStash{Stash: d.Stash, StashData: d.StashData}
	if err := writeDeltaFrame(w, deltaTagStash, &st); err != nil {
		return err
	}
	misc := deltaMisc{
		EvictGen:       d.EvictGen,
		Stats:          d.Stats,
		ReshufPerLevel: d.ReshufPerLevel,
		DeadPerLevel:   d.DeadPerLevel,
		Rng:            d.Rng,
		PosRng:         d.PosRng,
	}
	if err := writeDeltaFrame(w, deltaTagMisc, &misc); err != nil {
		return err
	}
	if s.hdr.HasDeadQ {
		if err := writeDeltaFrame(w, deltaTagDeadQ, s.deadq); err != nil {
			return err
		}
	}
	return writeDeltaFrame(w, deltaTagEnd, nil)
}

// SaveDelta captures and encodes in one synchronous step: everything
// mutated after epoch `since` (exclusive), closing the current epoch
// and returning the cut. Callers that must not pay the encode on the
// serving path use CaptureDelta and Encode separately.
func (o *ORAM) SaveDelta(w io.Writer, since uint64) (uint64, error) {
	s, cut, err := o.CaptureDelta(since)
	if err != nil {
		return 0, err
	}
	return cut, s.Encode(w)
}

// ApplyDelta replays a SaveDelta stream over the current state. The
// whole stream is decoded and CRC-verified first — a torn or corrupt
// stream is rejected with no state change. Semantic validation during
// the apply stage (out-of-range indices and the like) can still fail
// after partial mutation; on any error the caller must discard the
// instance and rebuild from its base image.
func (o *ORAM) ApplyDelta(r io.Reader) error {
	var (
		hdr     *deltaHeader
		buckets []ringoram.BucketDelta
		posB    []int64
		posP    []int64
		mem     []*secmem.SlotDelta
		st      *deltaStash
		misc    *deltaMisc
		deadq   map[int][]ringoram.SlotRef
		haveDQ  bool
		done    bool
	)
	for !done {
		tag, body, err := readDeltaFrame(r)
		if err != nil {
			return err
		}
		dec := gob.NewDecoder(bytes.NewReader(body))
		if hdr == nil && tag != deltaTagHeader {
			return fmt.Errorf("aboram: delta stream starts with record %q, want header", tag)
		}
		switch tag {
		case deltaTagHeader:
			if hdr != nil {
				return fmt.Errorf("aboram: duplicate delta header")
			}
			var h deltaHeader
			if err := dec.Decode(&h); err != nil {
				return fmt.Errorf("aboram: decoding delta header: %w", err)
			}
			if h.Levels != o.inner.Config().Levels {
				return fmt.Errorf("aboram: delta for a %d-level tree, instance has %d", h.Levels, o.inner.Config().Levels)
			}
			if h.Encrypted != (o.mem != nil) {
				return fmt.Errorf("aboram: delta data-plane mismatch (delta encrypted=%v)", h.Encrypted)
			}
			if h.HasDeadQ != (o.dq != nil) {
				return fmt.Errorf("aboram: delta DeadQ mismatch (delta hasDeadQ=%v)", h.HasDeadQ)
			}
			hdr = &h
		case deltaTagBucket:
			var chunk []ringoram.BucketDelta
			if err := dec.Decode(&chunk); err != nil {
				return fmt.Errorf("aboram: decoding delta buckets: %w", err)
			}
			buckets = append(buckets, chunk...)
		case deltaTagPos:
			var p deltaPos
			if err := dec.Decode(&p); err != nil {
				return fmt.Errorf("aboram: decoding delta positions: %w", err)
			}
			posB = append(posB, p.Blocks...)
			posP = append(posP, p.Paths...)
		case deltaTagMem:
			var chunk secmem.SlotDelta
			if err := dec.Decode(&chunk); err != nil {
				return fmt.Errorf("aboram: decoding delta store slots: %w", err)
			}
			mem = append(mem, &chunk)
		case deltaTagStash:
			var s deltaStash
			if err := dec.Decode(&s); err != nil {
				return fmt.Errorf("aboram: decoding delta stash: %w", err)
			}
			st = &s
		case deltaTagMisc:
			var m deltaMisc
			if err := dec.Decode(&m); err != nil {
				return fmt.Errorf("aboram: decoding delta counters: %w", err)
			}
			misc = &m
		case deltaTagDeadQ:
			var dq map[int][]ringoram.SlotRef
			if err := dec.Decode(&dq); err != nil {
				return fmt.Errorf("aboram: decoding delta DeadQ: %w", err)
			}
			deadq, haveDQ = dq, true
		case deltaTagEnd:
			done = true
		default:
			return fmt.Errorf("aboram: unknown delta record %q", tag)
		}
	}
	if st == nil || misc == nil {
		return fmt.Errorf("aboram: delta stream missing required sections")
	}
	if o.dq != nil && !haveDQ {
		return fmt.Errorf("aboram: delta stream missing DeadQ section")
	}

	d := &ringoram.Delta{
		Levels:         hdr.Levels,
		Buckets:        buckets,
		PosBlocks:      posB,
		PosPaths:       posP,
		EvictGen:       misc.EvictGen,
		Stats:          misc.Stats,
		ReshufPerLevel: misc.ReshufPerLevel,
		DeadPerLevel:   misc.DeadPerLevel,
		Rng:            misc.Rng,
		PosRng:         misc.PosRng,
		Stash:          st.Stash,
		StashData:      st.StashData,
	}
	if err := o.inner.ApplyDelta(d); err != nil {
		return err
	}
	for _, chunk := range mem {
		if err := o.mem.ApplySlots(chunk); err != nil {
			return err
		}
	}
	if o.dq != nil {
		if err := o.dq.Restore(deadq); err != nil {
			return err
		}
	}
	return nil
}

func writeDeltaFrame(w io.Writer, tag byte, payload any) error {
	var body bytes.Buffer
	body.WriteByte(tag)
	if payload != nil {
		if err := gob.NewEncoder(&body).Encode(payload); err != nil {
			return fmt.Errorf("aboram: encoding delta record %q: %w", tag, err)
		}
	}
	if body.Len() > maxDeltaBody {
		return fmt.Errorf("aboram: delta record %q overflows frame (%d bytes)", tag, body.Len())
	}
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(body.Len()))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.Checksum(body.Bytes(), deltaCRC))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body.Bytes())
	return err
}

func readDeltaFrame(r io.Reader) (byte, []byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, fmt.Errorf("aboram: torn delta frame header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[0:4])
	if n == 0 || n > maxDeltaBody {
		return 0, nil, fmt.Errorf("aboram: delta frame length %d out of range", n)
	}
	// Grow the buffer as bytes actually arrive rather than trusting the
	// length prefix: a hostile header must not force a large allocation.
	var body bytes.Buffer
	if m, err := io.CopyN(&body, r, int64(n)); err != nil {
		return 0, nil, fmt.Errorf("aboram: torn delta frame body (%d of %d bytes): %w", m, n, err)
	}
	b := body.Bytes()
	if crc32.Checksum(b, deltaCRC) != binary.BigEndian.Uint32(hdr[4:8]) {
		return 0, nil, fmt.Errorf("aboram: delta frame CRC mismatch")
	}
	return b[0], b[1:], nil
}
