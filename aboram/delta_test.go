package aboram

import (
	"bytes"
	"testing"
)

// deltaOps drives a deterministic mixed workload: writes (remembered in
// model when non-nil) plus pattern-only accesses.
func deltaOps(t *testing.T, o *ORAM, model map[int64][]byte, seed, n int64) {
	t.Helper()
	nb := o.NumBlocks()
	for i := int64(0); i < n; i++ {
		blk := (seed + i*31) % nb
		if o.Encrypted() && i%3 == 0 {
			d := fuzzPayload(o.BlockSize(), blk, byte(seed+i))
			if err := o.Write(blk, d); err != nil {
				t.Fatalf("write %d: %v", blk, err)
			}
			if model != nil {
				model[blk] = d
			}
			continue
		}
		if err := o.Access(blk); err != nil {
			t.Fatalf("access %d: %v", blk, err)
		}
	}
}

// TestDeltaChainFingerprint pins the core delta-correctness contract:
// full base + chain of deltas reconstructs the exact state of the live
// instance, fingerprint-identical, across every scheme.
func TestDeltaChainFingerprint(t *testing.T) {
	for _, scheme := range []Scheme{SchemeBaseline, SchemeIR, SchemeDR, SchemeNS, SchemeAB} {
		t.Run(string(scheme), func(t *testing.T) {
			opt := Options{Scheme: scheme, Levels: 9, Seed: 7, EncryptionKey: key}
			a, err := New(opt)
			if err != nil {
				t.Fatal(err)
			}
			model := map[int64][]byte{}
			deltaOps(t, a, model, 3, 400)

			var base bytes.Buffer
			if err := a.Save(&base); err != nil {
				t.Fatal(err)
			}
			cut := a.CutEpoch()

			var deltas []bytes.Buffer
			for round := int64(0); round < 3; round++ {
				deltaOps(t, a, model, 1000+round*77, 150)
				var buf bytes.Buffer
				next, err := a.SaveDelta(&buf, cut)
				if err != nil {
					t.Fatalf("delta %d: %v", round, err)
				}
				if next <= cut {
					t.Fatalf("cut did not advance: %d -> %d", cut, next)
				}
				cut = next
				deltas = append(deltas, buf)
			}

			b, err := Load(opt, &base)
			if err != nil {
				t.Fatal(err)
			}
			for i := range deltas {
				if err := b.ApplyDelta(&deltas[i]); err != nil {
					t.Fatalf("apply delta %d: %v", i, err)
				}
			}

			fpA, err := a.Fingerprint()
			if err != nil {
				t.Fatal(err)
			}
			fpB, err := b.Fingerprint()
			if err != nil {
				t.Fatal(err)
			}
			if fpA != fpB {
				t.Fatal("base+delta chain diverged from the live instance")
			}
			if err := b.CheckIntegrity(); err != nil {
				t.Fatal(err)
			}
			for blk, want := range model {
				got, err := b.Read(blk)
				if err != nil {
					t.Fatalf("read %d: %v", blk, err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("block %d lost across delta chain", blk)
				}
			}
		})
	}
}

// TestDeltaPatternOnly covers the nil-data-plane configuration: deltas
// carry no 'M' records and the DeadQ section is absent for schemes
// without remote allocation.
func TestDeltaPatternOnly(t *testing.T) {
	opt := Options{Scheme: SchemeBaseline, Levels: 9, Seed: 4}
	a, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	deltaOps(t, a, nil, 5, 300)
	var base bytes.Buffer
	if err := a.Save(&base); err != nil {
		t.Fatal(err)
	}
	cut := a.CutEpoch()
	deltaOps(t, a, nil, 9000, 200)
	var delta bytes.Buffer
	if _, err := a.SaveDelta(&delta, cut); err != nil {
		t.Fatal(err)
	}

	b, err := Load(opt, &base)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.ApplyDelta(&delta); err != nil {
		t.Fatal(err)
	}
	fpA, _ := a.Fingerprint()
	fpB, _ := b.Fingerprint()
	if fpA != fpB {
		t.Fatal("pattern-only delta diverged")
	}
}

// TestDeltaSmallerThanBase sanity-checks the point of the feature: a
// delta covering a small touched set is much smaller than a full image.
func TestDeltaSmallerThanBase(t *testing.T) {
	opt := Options{Scheme: SchemeAB, Levels: 12, Seed: 2, EncryptionKey: key}
	a, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	deltaOps(t, a, nil, 1, 500)
	var base bytes.Buffer
	if err := a.Save(&base); err != nil {
		t.Fatal(err)
	}
	cut := a.CutEpoch()
	deltaOps(t, a, nil, 7777, 40)
	var delta bytes.Buffer
	if _, err := a.SaveDelta(&delta, cut); err != nil {
		t.Fatal(err)
	}
	if delta.Len()*5 >= base.Len() {
		t.Fatalf("delta %d bytes not ≥5x smaller than base %d bytes", delta.Len(), base.Len())
	}
}

// TestDeltaTornAndCorrupt: every truncation is rejected, and every
// single-byte corruption is caught by the frame CRCs.
func TestDeltaTornAndCorrupt(t *testing.T) {
	opt := Options{Scheme: SchemeAB, Levels: 9, Seed: 3, EncryptionKey: key}
	a, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	deltaOps(t, a, nil, 2, 200)
	var base bytes.Buffer
	if err := a.Save(&base); err != nil {
		t.Fatal(err)
	}
	cut := a.CutEpoch()
	deltaOps(t, a, nil, 31, 100)
	var delta bytes.Buffer
	if _, err := a.SaveDelta(&delta, cut); err != nil {
		t.Fatal(err)
	}
	stream := delta.Bytes()

	fresh := func() *ORAM {
		b, err := Load(opt, bytes.NewReader(base.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	for _, cutAt := range []int{0, 1, 7, 8, 9, len(stream) / 2, len(stream) - 1} {
		if err := fresh().ApplyDelta(bytes.NewReader(stream[:cutAt])); err == nil {
			t.Fatalf("torn delta (%d of %d bytes) accepted", cutAt, len(stream))
		}
	}
	for _, flip := range []int{4, 8, 20, len(stream) / 3, len(stream) - 2} {
		mut := append([]byte(nil), stream...)
		mut[flip] ^= 0x40
		if err := fresh().ApplyDelta(bytes.NewReader(mut)); err == nil {
			t.Fatalf("corrupt delta (byte %d flipped) accepted", flip)
		}
	}
}

// TestDeltaGeometryMismatch: a delta saved against one geometry or
// configuration must be rejected by an incompatible instance.
func TestDeltaGeometryMismatch(t *testing.T) {
	a, err := New(Options{Scheme: SchemeAB, Levels: 9, Seed: 3, EncryptionKey: key})
	if err != nil {
		t.Fatal(err)
	}
	deltaOps(t, a, nil, 2, 50)
	cut := uint64(0)
	var delta bytes.Buffer
	if _, err := a.SaveDelta(&delta, cut); err != nil {
		t.Fatal(err)
	}
	stream := delta.Bytes()

	wrongLevels, _ := New(Options{Scheme: SchemeAB, Levels: 10, Seed: 3, EncryptionKey: key})
	if err := wrongLevels.ApplyDelta(bytes.NewReader(stream)); err == nil {
		t.Fatal("delta for 9 levels accepted by a 10-level instance")
	}
	patternOnly, _ := New(Options{Scheme: SchemeAB, Levels: 9, Seed: 3})
	if err := patternOnly.ApplyDelta(bytes.NewReader(stream)); err == nil {
		t.Fatal("encrypted delta accepted by a pattern-only instance")
	}
	noDQ, _ := New(Options{Scheme: SchemeBaseline, Levels: 9, Seed: 3, EncryptionKey: key})
	if err := noDQ.ApplyDelta(bytes.NewReader(stream)); err == nil {
		t.Fatal("AB delta (with DeadQ) accepted by a baseline instance")
	}
}
