// Package aboram is the public face of the AB-ORAM library: an oblivious
// block store with adjustable buckets (HPCA'23). It wires together the
// protocol engine, the AB-ORAM dead-block reclaim machinery, and —
// optionally — the encrypted and authenticated memory backend, behind a
// small block-device-style API:
//
//	o, err := aboram.New(aboram.Options{
//		Scheme:        aboram.SchemeAB,
//		Levels:        16,
//		EncryptionKey: key, // 16 bytes; nil for pattern-only simulation
//	})
//	err = o.Write(42, data)     // oblivious store
//	data, err = o.Read(42)      // oblivious load
//
// Every Read and Write produces an identical-shape memory access pattern
// (one Ring ORAM ReadPath plus background maintenance), so an observer of
// the memory bus learns nothing about which block was touched, whether it
// was a load or a store, or whether it hit. With an encryption key set,
// contents are AES-CTR encrypted and Merkle-authenticated at rest, and
// tampering with the backing store surfaces as an error.
package aboram

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ringoram"
	"repro/internal/secmem"
)

// Scheme selects the bucket-allocation strategy.
type Scheme = core.Scheme

// The five schemes evaluated in the paper (§VII). SchemeAB is the paper's
// contribution and the recommended default: ~36% less memory than the
// compacted baseline at a few percent performance cost.
const (
	SchemeBaseline = core.SchemeBaseline
	SchemeIR       = core.SchemeIR
	SchemeDR       = core.SchemeDR
	SchemeNS       = core.SchemeNS
	SchemeAB       = core.SchemeAB
)

// Options configures an ORAM instance.
type Options struct {
	// Scheme defaults to SchemeAB.
	Scheme Scheme
	// Levels sets the tree height; capacity grows as 2^Levels. Default 16
	// (~160k blocks of 64 B ≈ 10 MiB protected data). Minimum 8.
	Levels int
	// Seed makes the instance's randomized choices reproducible. The
	// default (0) is a fixed seed; security-sensitive deployments would
	// inject hardware entropy here.
	Seed uint64
	// EncryptionKey, when 16 bytes long, enables the encrypted and
	// authenticated data plane. nil keeps the instance pattern-only:
	// Access works but Read/Write are unavailable.
	EncryptionKey []byte
	// XORRead enables Ring ORAM's XOR online fast path: each online
	// ReadPath's block reads collapse into a single combined transfer that
	// remote clients peel with locally regenerated CTR pads (see ReadXOR).
	XORRead bool
}

// Stats summarizes an instance's activity.
type Stats struct {
	Accesses        uint64 // online accesses served
	EvictPaths      uint64
	EarlyReshuffles uint64
	ExtendRatio     float64 // S extensions granted / attempted (DR and AB)
	StashPeak       int
	StashOverflows  uint64 // must stay 0; nonzero means misconfiguration
}

// ORAM is an oblivious block store. Not safe for concurrent use; wrap
// with a mutex for shared access (the underlying protocol is inherently
// serial — that is what makes it oblivious).
type ORAM struct {
	inner *ringoram.ORAM
	mem   *secmem.Memory
	dq    *core.DeadQ
	xor   bool // Options.XORRead
}

// New builds an ORAM instance.
func New(opt Options) (*ORAM, error) {
	if opt.Scheme == "" {
		opt.Scheme = SchemeAB
	}
	if opt.Levels == 0 {
		opt.Levels = 16
	}
	cfg, dq, err := core.Build(opt.Scheme, core.DefaultOptions(opt.Levels, opt.Seed))
	if err != nil {
		return nil, err
	}
	cfg.XORRead = opt.XORRead
	o := &ORAM{dq: dq, xor: opt.XORRead}
	if opt.EncryptionKey != nil {
		var slots int64
		// The data plane must cover every physical slot of the tree.
		slots = int64(ringoram.SpaceBytesStatic(cfg)) / int64(cfg.BlockB)
		mem, err := secmem.New(slots, cfg.BlockB, opt.EncryptionKey)
		if err != nil {
			return nil, err
		}
		cfg.Data = mem
		o.mem = mem
	}
	inner, err := ringoram.New(cfg)
	if err != nil {
		return nil, err
	}
	o.inner = inner
	return o, nil
}

// NumBlocks returns the number of addressable user blocks.
func (o *ORAM) NumBlocks() int64 { return o.inner.Config().NumBlocks }

// BlockSize returns the block size in bytes.
func (o *ORAM) BlockSize() int { return o.inner.Config().BlockB }

// Encrypted reports whether the data plane is active.
func (o *ORAM) Encrypted() bool { return o.mem != nil }

// Access touches a block obliviously without transferring content; use it
// for pattern-only simulation or to prefetch obliviously.
func (o *ORAM) Access(block int64) error {
	_, err := o.inner.Access(block)
	return err
}

// Read obliviously fetches a block's content. Requires an EncryptionKey.
// Unwritten blocks read as zeros.
func (o *ORAM) Read(block int64) ([]byte, error) {
	if o.mem == nil {
		return nil, fmt.Errorf("aboram: Read requires Options.EncryptionKey")
	}
	data, _, err := o.inner.ReadBlock(block)
	return data, err
}

// XORResult is one read served through the online-transfer surface: the
// verified plaintext plus a model of what actually crossed the memory bus,
// which the serving layer re-ships to remote clients.
type XORResult struct {
	// Data is the block's verified plaintext.
	Data []byte
	// Env is the XOR envelope — one combined block plus pad descriptors —
	// set when Options.XORRead is on and the read hit an off-chip slot.
	// Remote clients peel it with secmem.PeelPayload.
	Env *secmem.XORRead
	// PathBlocks models the baseline online transfer when XORRead is off:
	// one block per off-chip bucket of the ReadPath, with the real block's
	// position carrying the verified plaintext (the others are filler the
	// client discards). RealPos indexes the real block; -1 with nil
	// PathBlocks means the read was served from the stash or the on-chip
	// treetop and only the plaintext travels.
	PathBlocks [][]byte
	RealPos    int
}

// ReadXOR is Read plus the online-transfer envelope: what a remote client
// would receive over the wire. With Options.XORRead the envelope is the
// single combined XOR block; without it, the full per-bucket path transfer.
// Requires an EncryptionKey.
func (o *ORAM) ReadXOR(block int64) (*XORResult, error) {
	if o.mem == nil {
		return nil, fmt.Errorf("aboram: ReadXOR requires Options.EncryptionKey")
	}
	data, _, err := o.inner.ReadBlock(block)
	if err != nil {
		return nil, err
	}
	res := &XORResult{Data: data, RealPos: -1}
	on := o.inner.LastOnline()
	if on.Env != nil {
		res.Env = on.Env
		return res, nil
	}
	if o.xor || on.Real < 0 {
		// XOR mode with a stash/on-chip hit, or no off-chip real read:
		// only the plaintext travels.
		return res, nil
	}
	// XOR disabled: model the baseline (L+1)·B online transfer. Dummy
	// positions ship the current stored bytes as filler; the real position
	// ships the verified plaintext (maintenance may already have rewritten
	// its slot, so the stored ciphertext is not authoritative).
	blockB := uint64(o.BlockSize())
	res.PathBlocks = make([][]byte, len(on.Blocks))
	for i, addr := range on.Blocks {
		if i == on.Real {
			res.PathBlocks[i] = data
			continue
		}
		res.PathBlocks[i] = o.mem.Ciphertext(int64(addr / blockB))
	}
	res.RealPos = on.Real
	return res, nil
}

// Write obliviously stores a block's content (exactly BlockSize bytes).
// Requires an EncryptionKey.
func (o *ORAM) Write(block int64, data []byte) error {
	if o.mem == nil {
		return fmt.Errorf("aboram: Write requires Options.EncryptionKey")
	}
	_, err := o.inner.WriteBlock(block, data)
	return err
}

// SpaceBytes returns the backing tree size — the metric AB-ORAM reduces.
func (o *ORAM) SpaceBytes() uint64 { return o.inner.SpaceBytes() }

// Utilization returns protected data bytes / tree bytes.
func (o *ORAM) Utilization() float64 { return o.inner.Utilization() }

// Stats returns activity counters.
func (o *ORAM) Stats() Stats {
	st := o.inner.Stats()
	ratio := 0.0
	if st.ExtendAttempts > 0 {
		ratio = float64(st.ExtendGranted) / float64(st.ExtendAttempts)
	}
	return Stats{
		Accesses:        st.OnlineAccesses,
		EvictPaths:      st.EvictPaths,
		EarlyReshuffles: st.EarlyReshuffles,
		ExtendRatio:     ratio,
		StashPeak:       o.inner.Stash().Peak(),
		StashOverflows:  o.inner.Stash().Overflows(),
	}
}

// CheckIntegrity validates the complete internal state (every block
// reachable exactly once, all metadata consistent). O(tree size); meant
// for tests and audits, not hot paths.
func (o *ORAM) CheckIntegrity() error { return o.inner.CheckInvariants() }
