package aboram

import (
	"bytes"
	"testing"
)

func TestFacadeSaveLoadEncrypted(t *testing.T) {
	opt := Options{Scheme: SchemeAB, Levels: 10, Seed: 11, EncryptionKey: key}
	o, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0x5c}, o.BlockSize())
	if err := o.Write(3, payload); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 1000; i++ {
		if err := o.Access((i * 31) % o.NumBlocks()); err != nil {
			t.Fatal(err)
		}
	}

	var buf bytes.Buffer
	if err := o.Save(&buf); err != nil {
		t.Fatal(err)
	}
	clone, err := Load(opt, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := clone.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	got, err := clone.Read(3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload lost across facade checkpoint")
	}
	// DR/AB DeadQ contents travelled too: the clone keeps extending.
	for i := int64(0); i < 2000; i++ {
		if err := clone.Access((i * 17) % clone.NumBlocks()); err != nil {
			t.Fatal(err)
		}
	}
	if clone.Stats().ExtendRatio <= 0 {
		t.Fatal("restored AB instance never extends")
	}
	if err := clone.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeSaveLoadPatternOnly(t *testing.T) {
	opt := Options{Scheme: SchemeBaseline, Levels: 10, Seed: 2}
	o, _ := New(opt)
	for i := int64(0); i < 500; i++ {
		if err := o.Access(i % o.NumBlocks()); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := o.Save(&buf); err != nil {
		t.Fatal(err)
	}
	clone, err := Load(opt, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if clone.Stats().Accesses != o.Stats().Accesses {
		t.Fatal("stats not preserved")
	}
	if clone.Encrypted() {
		t.Fatal("pattern-only checkpoint restored with a data plane")
	}
}

func TestFacadeLoadKeyMismatch(t *testing.T) {
	opt := Options{Scheme: SchemeBaseline, Levels: 10, EncryptionKey: key}
	o, _ := New(opt)
	var buf bytes.Buffer
	if err := o.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Encrypted image, no key.
	noKey := opt
	noKey.EncryptionKey = nil
	if _, err := Load(noKey, bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("encrypted checkpoint loaded without a key")
	}
	// Pattern-only image, spurious key.
	plain, _ := New(Options{Scheme: SchemeBaseline, Levels: 10})
	var buf2 bytes.Buffer
	_ = plain.Save(&buf2)
	if _, err := Load(opt, &buf2); err == nil {
		t.Fatal("pattern-only checkpoint loaded with a key")
	}
}

func TestFacadeLoadGarbage(t *testing.T) {
	if _, err := Load(Options{Levels: 10}, bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Fatal("garbage accepted")
	}
}

// A wrong key must be caught by the integrity layer on the first read of
// authenticated content, not silently decrypt to garbage.
func TestFacadeLoadWrongKeyDetected(t *testing.T) {
	opt := Options{Scheme: SchemeBaseline, Levels: 10, Seed: 4, EncryptionKey: key}
	o, _ := New(opt)
	if err := o.Write(1, bytes.Repeat([]byte{9}, o.BlockSize())); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 300; i++ {
		_ = o.Access(i % o.NumBlocks())
	}
	var buf bytes.Buffer
	if err := o.Save(&buf); err != nil {
		t.Fatal(err)
	}
	bad := opt
	bad.EncryptionKey = []byte("fedcba9876543210")
	clone, err := Load(bad, &buf)
	if err != nil {
		// Also acceptable: rejected at load time.
		return
	}
	if _, err := clone.Read(1); err == nil {
		// The block may be in the stash (plaintext); flush with accesses
		// and retry.
		for i := int64(0); i < 500; i++ {
			_ = clone.Access((i * 7) % clone.NumBlocks())
		}
		got, err := clone.Read(1)
		if err == nil && bytes.Equal(got, bytes.Repeat([]byte{9}, clone.BlockSize())) {
			t.Fatal("wrong key decrypted the right plaintext?!")
		}
	}
}

// TestFingerprintDeterministic pins the fingerprint contract: repeated
// calls on an unchanged instance agree (Save's gob bytes do not — maps
// serialize in randomized order — which is the reason Fingerprint
// exists), a Save/Load round trip preserves the fingerprint, and any
// state change moves it.
func TestFingerprintDeterministic(t *testing.T) {
	opt := Options{Scheme: SchemeAB, Levels: 10, Seed: 5, EncryptionKey: key}
	o, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 300; i++ {
		if err := o.Access((i * 13) % o.NumBlocks()); err != nil {
			t.Fatal(err)
		}
	}
	fp1, err := o.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	fp2, err := o.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fp1 != fp2 {
		t.Fatalf("fingerprint not deterministic on an unchanged instance:\n %x\n %x", fp1, fp2)
	}

	var buf bytes.Buffer
	if err := o.Save(&buf); err != nil {
		t.Fatal(err)
	}
	clone, err := Load(opt, &buf)
	if err != nil {
		t.Fatal(err)
	}
	fp3, err := clone.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fp3 != fp1 {
		t.Fatalf("Save/Load round trip changed the fingerprint:\n before %x\n after  %x", fp1, fp3)
	}

	if err := o.Write(7, bytes.Repeat([]byte{0xd7}, o.BlockSize())); err != nil {
		t.Fatal(err)
	}
	fp4, err := o.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fp4 == fp1 {
		t.Fatal("a write left the fingerprint unchanged")
	}
}
