package aboram_test

import (
	"bytes"
	"fmt"
	"log"

	"repro/aboram"
)

// The basic workflow: create an encrypted oblivious store, write, read.
func Example() {
	o, err := aboram.New(aboram.Options{
		Scheme:        aboram.SchemeAB,
		Levels:        10,
		EncryptionKey: []byte("0123456789abcdef"),
	})
	if err != nil {
		log.Fatal(err)
	}

	secret := bytes.Repeat([]byte{0x42}, o.BlockSize())
	if err := o.Write(7, secret); err != nil {
		log.Fatal(err)
	}
	got, err := o.Read(7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("round trip ok:", bytes.Equal(got, secret))
	fmt.Println("space vs plain storage:", o.SpaceBytes() > uint64(o.NumBlocks())*uint64(o.BlockSize()))
	// Output:
	// round trip ok: true
	// space vs plain storage: true
}

// Pattern-only mode: no key, no contents — just the oblivious access
// pattern, which is what the paper's performance experiments simulate.
func Example_patternOnly() {
	o, err := aboram.New(aboram.Options{Scheme: aboram.SchemeDR, Levels: 10})
	if err != nil {
		log.Fatal(err)
	}
	for i := int64(0); i < 100; i++ {
		if err := o.Access(i % o.NumBlocks()); err != nil {
			log.Fatal(err)
		}
	}
	st := o.Stats()
	fmt.Println("accesses:", st.Accesses)
	fmt.Println("overflows:", st.StashOverflows)
	// Output:
	// accesses: 100
	// overflows: 0
}
