// Package ods builds oblivious data structures on top of the AB-ORAM
// block store: an array, a stack, and a FIFO queue whose memory access
// patterns reveal nothing about the operations performed on them.
//
// Every operation on every structure performs exactly one oblivious block
// read followed by one oblivious block write — reads, writes, pushes,
// pops, hits, and misses are indistinguishable on the memory bus, and the
// structures' occupancy is known only to the trusted client (which keeps
// cursors on-chip, as an ORAM controller keeps its position map).
package ods

import (
	"fmt"

	"repro/aboram"
)

// Store is the block-device interface the structures build on; *aboram.ORAM
// satisfies it. Factoring the interface keeps the structures testable
// against an in-memory fake.
type Store interface {
	NumBlocks() int64
	BlockSize() int
	Read(block int64) ([]byte, error)
	Write(block int64, data []byte) error
}

var _ Store = (*aboram.ORAM)(nil)

// Array is a fixed-length oblivious array of fixed-size items, packed
// multiple items per block. Get and Set both perform one read and one
// write (Get rewrites the block unchanged), so the two are
// indistinguishable to an observer.
type Array struct {
	store    Store
	itemB    int
	perBlock int
	length   int64
	base     int64 // first block used by this array
}

// NewArray carves an array of `length` items of itemBytes each out of the
// store, starting at block `base`.
func NewArray(store Store, base, length int64, itemBytes int) (*Array, error) {
	if itemBytes <= 0 || itemBytes > store.BlockSize() {
		return nil, fmt.Errorf("ods: item size %d outside (0, %d]", itemBytes, store.BlockSize())
	}
	if length <= 0 {
		return nil, fmt.Errorf("ods: non-positive length %d", length)
	}
	perBlock := store.BlockSize() / itemBytes
	blocks := (length + int64(perBlock) - 1) / int64(perBlock)
	if base < 0 || base+blocks > store.NumBlocks() {
		return nil, fmt.Errorf("ods: array [%d, %d) exceeds store of %d blocks", base, base+blocks, store.NumBlocks())
	}
	return &Array{store: store, itemB: itemBytes, perBlock: perBlock, length: length, base: base}, nil
}

// Len returns the array length in items.
func (a *Array) Len() int64 { return a.length }

// Blocks returns how many store blocks the array occupies.
func (a *Array) Blocks() int64 {
	return (a.length + int64(a.perBlock) - 1) / int64(a.perBlock)
}

func (a *Array) locate(i int64) (block int64, off int, err error) {
	if i < 0 || i >= a.length {
		return 0, 0, fmt.Errorf("ods: index %d out of range [0, %d)", i, a.length)
	}
	return a.base + i/int64(a.perBlock), int(i%int64(a.perBlock)) * a.itemB, nil
}

// Get obliviously fetches item i. The bus sees one read plus one write,
// the same as Set.
func (a *Array) Get(i int64) ([]byte, error) {
	block, off, err := a.locate(i)
	if err != nil {
		return nil, err
	}
	data, err := a.store.Read(block)
	if err != nil {
		return nil, err
	}
	// Cover write: makes Get indistinguishable from Set.
	if err := a.store.Write(block, data); err != nil {
		return nil, err
	}
	out := make([]byte, a.itemB)
	copy(out, data[off:off+a.itemB])
	return out, nil
}

// Set obliviously stores item i.
func (a *Array) Set(i int64, item []byte) error {
	if len(item) != a.itemB {
		return fmt.Errorf("ods: item is %d bytes, want %d", len(item), a.itemB)
	}
	block, off, err := a.locate(i)
	if err != nil {
		return err
	}
	data, err := a.store.Read(block)
	if err != nil {
		return err
	}
	copy(data[off:off+a.itemB], item)
	return a.store.Write(block, data)
}

// Stack is an oblivious LIFO over an Array. The depth cursor lives on the
// trusted client; the bus sees one read + one write per operation
// regardless of push/pop/depth.
type Stack struct {
	arr   *Array
	depth int64
}

// NewStack builds a stack of capacity items of itemBytes each over the
// store region starting at block base.
func NewStack(store Store, base, capacity int64, itemBytes int) (*Stack, error) {
	arr, err := NewArray(store, base, capacity, itemBytes)
	if err != nil {
		return nil, err
	}
	return &Stack{arr: arr}, nil
}

// Depth returns the current element count (client-side knowledge).
func (s *Stack) Depth() int64 { return s.depth }

// Push stores an item on top.
func (s *Stack) Push(item []byte) error {
	if s.depth == s.arr.Len() {
		return fmt.Errorf("ods: stack full (%d)", s.depth)
	}
	if err := s.arr.Set(s.depth, item); err != nil {
		return err
	}
	s.depth++
	return nil
}

// Pop removes and returns the top item.
func (s *Stack) Pop() ([]byte, error) {
	if s.depth == 0 {
		return nil, fmt.Errorf("ods: stack empty")
	}
	item, err := s.arr.Get(s.depth - 1)
	if err != nil {
		return nil, err
	}
	s.depth--
	return item, nil
}

// Queue is an oblivious FIFO ring over an Array, with head/size cursors on
// the trusted client.
type Queue struct {
	arr        *Array
	head, size int64
}

// NewQueue builds a queue of capacity items of itemBytes each over the
// store region starting at block base.
func NewQueue(store Store, base, capacity int64, itemBytes int) (*Queue, error) {
	arr, err := NewArray(store, base, capacity, itemBytes)
	if err != nil {
		return nil, err
	}
	return &Queue{arr: arr}, nil
}

// Size returns the element count (client-side knowledge).
func (q *Queue) Size() int64 { return q.size }

// Enqueue appends an item.
func (q *Queue) Enqueue(item []byte) error {
	if q.size == q.arr.Len() {
		return fmt.Errorf("ods: queue full (%d)", q.size)
	}
	pos := (q.head + q.size) % q.arr.Len()
	if err := q.arr.Set(pos, item); err != nil {
		return err
	}
	q.size++
	return nil
}

// Dequeue removes and returns the oldest item.
func (q *Queue) Dequeue() ([]byte, error) {
	if q.size == 0 {
		return nil, fmt.Errorf("ods: queue empty")
	}
	item, err := q.arr.Get(q.head)
	if err != nil {
		return nil, err
	}
	q.head = (q.head + 1) % q.arr.Len()
	q.size--
	return item, nil
}
