package ods

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"repro/aboram"
)

// fakeStore is a plain in-memory Store that counts operations, so tests
// can assert both correctness and access-pattern uniformity without the
// cost of a real ORAM.
type fakeStore struct {
	blocks [][]byte
	reads  int
	writes int
}

func newFake(n int64, blockB int) *fakeStore {
	f := &fakeStore{blocks: make([][]byte, n)}
	for i := range f.blocks {
		f.blocks[i] = make([]byte, blockB)
	}
	return f
}

func (f *fakeStore) NumBlocks() int64 { return int64(len(f.blocks)) }
func (f *fakeStore) BlockSize() int   { return len(f.blocks[0]) }
func (f *fakeStore) Read(b int64) ([]byte, error) {
	if b < 0 || b >= f.NumBlocks() {
		return nil, fmt.Errorf("fake: out of range")
	}
	f.reads++
	return append([]byte(nil), f.blocks[b]...), nil
}
func (f *fakeStore) Write(b int64, d []byte) error {
	if b < 0 || b >= f.NumBlocks() {
		return fmt.Errorf("fake: out of range")
	}
	f.writes++
	copy(f.blocks[b], d)
	return nil
}

func TestArrayValidation(t *testing.T) {
	f := newFake(8, 64)
	cases := []struct {
		base, length int64
		item         int
	}{
		{0, 10, 0}, {0, 10, 65}, {0, 0, 8}, {-1, 2, 8}, {7, 100, 8},
	}
	for _, c := range cases {
		if _, err := NewArray(f, c.base, c.length, c.item); err == nil {
			t.Errorf("NewArray(%d, %d, %d) accepted", c.base, c.length, c.item)
		}
	}
}

func TestArrayGetSet(t *testing.T) {
	f := newFake(8, 64)
	a, err := NewArray(f, 0, 20, 8) // 8 items/block -> 3 blocks
	if err != nil {
		t.Fatal(err)
	}
	if a.Blocks() != 3 || a.Len() != 20 {
		t.Fatalf("geometry: %d blocks, %d items", a.Blocks(), a.Len())
	}
	for i := int64(0); i < 20; i++ {
		item := bytes.Repeat([]byte{byte(i + 1)}, 8)
		if err := a.Set(i, item); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(0); i < 20; i++ {
		got, err := a.Get(i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, bytes.Repeat([]byte{byte(i + 1)}, 8)) {
			t.Fatalf("item %d corrupted", i)
		}
	}
	if _, err := a.Get(20); err == nil {
		t.Fatal("out-of-range get accepted")
	}
	if err := a.Set(0, []byte("short")); err == nil {
		t.Fatal("short item accepted")
	}
}

// The defining property: Get and Set are indistinguishable — both cost
// exactly one read and one write.
func TestUniformAccessPattern(t *testing.T) {
	f := newFake(8, 64)
	a, _ := NewArray(f, 0, 16, 16)
	_ = a.Set(3, make([]byte, 16))
	setReads, setWrites := f.reads, f.writes
	f.reads, f.writes = 0, 0
	_, _ = a.Get(9)
	if f.reads != setReads || f.writes != setWrites {
		t.Fatalf("Get (%d r, %d w) distinguishable from Set (%d r, %d w)",
			f.reads, f.writes, setReads, setWrites)
	}
	if f.reads != 1 || f.writes != 1 {
		t.Fatalf("expected exactly 1 read + 1 write, got %d + %d", f.reads, f.writes)
	}
}

func TestStack(t *testing.T) {
	f := newFake(8, 64)
	s, err := NewStack(f, 0, 10, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Pop(); err == nil {
		t.Fatal("pop from empty accepted")
	}
	for i := 0; i < 10; i++ {
		if err := s.Push(bytes.Repeat([]byte{byte(i)}, 8)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Push(make([]byte, 8)); err == nil {
		t.Fatal("push to full accepted")
	}
	for i := 9; i >= 0; i-- {
		got, err := s.Pop()
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != byte(i) {
			t.Fatalf("LIFO order violated at %d", i)
		}
	}
	if s.Depth() != 0 {
		t.Fatalf("depth = %d", s.Depth())
	}
}

func TestQueueWrapAround(t *testing.T) {
	f := newFake(8, 64)
	q, err := NewQueue(f, 0, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Dequeue(); err == nil {
		t.Fatal("dequeue from empty accepted")
	}
	// Push/pop across the ring boundary several times.
	next, expect := byte(0), byte(0)
	for round := 0; round < 5; round++ {
		for q.Size() < 4 {
			if err := q.Enqueue(bytes.Repeat([]byte{next}, 8)); err != nil {
				t.Fatal(err)
			}
			next++
		}
		if err := q.Enqueue(make([]byte, 8)); err == nil {
			t.Fatal("enqueue to full accepted")
		}
		for q.Size() > 1 {
			got, err := q.Dequeue()
			if err != nil {
				t.Fatal(err)
			}
			if got[0] != expect {
				t.Fatalf("FIFO order violated: got %d want %d", got[0], expect)
			}
			expect++
		}
	}
}

// Property: an ods.Array behaves exactly like a plain slice under random
// operation sequences.
func TestQuickArrayVsSlice(t *testing.T) {
	f := newFake(16, 64)
	a, _ := NewArray(f, 0, 50, 4)
	model := make([][]byte, 50)
	for i := range model {
		model[i] = make([]byte, 4)
	}
	fn := func(idx uint8, val uint32, write bool) bool {
		i := int64(idx) % 50
		if write {
			item := []byte{byte(val), byte(val >> 8), byte(val >> 16), byte(val >> 24)}
			if a.Set(i, item) != nil {
				return false
			}
			copy(model[i], item)
			return true
		}
		got, err := a.Get(i)
		return err == nil && bytes.Equal(got, model[i])
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// End to end: the structures compose with the real encrypted ORAM.
func TestOnRealORAM(t *testing.T) {
	o, err := aboram.New(aboram.Options{Levels: 10, EncryptionKey: []byte("0123456789abcdef"), Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStack(o, 0, 20, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := s.Push(bytes.Repeat([]byte{byte(i + 1)}, 16)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 19; i >= 0; i-- {
		got, err := s.Pop()
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != byte(i+1) {
			t.Fatalf("LIFO violated through real ORAM at %d", i)
		}
	}
	if err := o.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}
