package aboram

import (
	"bytes"
	"sort"
	"testing"
)

// fuzzPayload expands a single byte into a full deterministic block.
func fuzzPayload(blockB int, blk int64, fill byte) []byte {
	d := make([]byte, blockB)
	for i := range d {
		d[i] = fill ^ byte(blk) ^ byte(i*7)
	}
	return d
}

// FuzzCheckpointRoundTrip interprets the input as an op program (3 bytes
// per op: kind, block-high, block-low) over an encrypted instance of a
// fuzz-selected scheme, interleaving Save/Load round trips with reads,
// writes, and accesses. Every read — before and after restores — must
// return exactly what a plain map remembers, and the final restored
// instance must pass a full integrity check.
func FuzzCheckpointRoundTrip(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{2, 0, 0, 5, 3, 0, 0, 1, 0, 5})
	f.Add([]byte{4, 0, 0, 1, 40, 3, 0, 0, 1, 0, 40, 0, 1, 7, 99, 3, 0, 0, 1, 1, 7})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		if len(data) > 192 {
			data = data[:192]
		}
		schemes := []Scheme{SchemeBaseline, SchemeIR, SchemeDR, SchemeNS, SchemeAB}
		opt := Options{
			Scheme:        schemes[int(data[0])%len(schemes)],
			Levels:        8,
			Seed:          9,
			EncryptionKey: key,
		}
		o, err := New(opt)
		if err != nil {
			t.Fatal(err)
		}
		nb, bs := o.NumBlocks(), o.BlockSize()
		model := map[int64][]byte{}
		roundTrip := func() {
			var buf bytes.Buffer
			if err := o.Save(&buf); err != nil {
				t.Fatalf("save: %v", err)
			}
			restored, err := Load(opt, &buf)
			if err != nil {
				t.Fatalf("load: %v", err)
			}
			o = restored
		}
		restores := 0
		for i := 1; i+2 < len(data); i += 3 {
			blk := (int64(data[i+1])<<8 | int64(data[i+2])) % nb
			switch data[i] % 4 {
			case 0:
				d := fuzzPayload(bs, blk, data[i+2])
				if err := o.Write(blk, d); err != nil {
					t.Fatalf("write %d: %v", blk, err)
				}
				model[blk] = d
			case 1:
				got, err := o.Read(blk)
				if err != nil {
					t.Fatalf("read %d: %v", blk, err)
				}
				want := model[blk]
				if want == nil {
					want = make([]byte, bs)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("block %d corrupted", blk)
				}
			case 2:
				if err := o.Access(blk); err != nil {
					t.Fatalf("access %d: %v", blk, err)
				}
			case 3:
				// Bound restores: each is a full-state gob round trip.
				if restores < 6 {
					roundTrip()
					restores++
				}
			}
		}
		roundTrip()
		blocks := make([]int64, 0, len(model))
		for blk := range model {
			blocks = append(blocks, blk)
		}
		sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
		for _, blk := range blocks {
			got, err := o.Read(blk)
			if err != nil {
				t.Fatalf("final read %d: %v", blk, err)
			}
			if !bytes.Equal(got, model[blk]) {
				t.Fatalf("block %d lost across checkpoint", blk)
			}
		}
		if err := o.CheckIntegrity(); err != nil {
			t.Fatal(err)
		}
	})
}
