package aboram

import (
	"bytes"
	"sort"
	"sync"
	"testing"
)

// fuzzPayload expands a single byte into a full deterministic block.
func fuzzPayload(blockB int, blk int64, fill byte) []byte {
	d := make([]byte, blockB)
	for i := range d {
		d[i] = fill ^ byte(blk) ^ byte(i*7)
	}
	return d
}

// FuzzCheckpointRoundTrip interprets the input as an op program (3 bytes
// per op: kind, block-high, block-low) over an encrypted instance of a
// fuzz-selected scheme, interleaving Save/Load round trips with reads,
// writes, and accesses. Every read — before and after restores — must
// return exactly what a plain map remembers, and the final restored
// instance must pass a full integrity check.
func FuzzCheckpointRoundTrip(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{2, 0, 0, 5, 3, 0, 0, 1, 0, 5})
	f.Add([]byte{4, 0, 0, 1, 40, 3, 0, 0, 1, 0, 40, 0, 1, 7, 99, 3, 0, 0, 1, 1, 7})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		if len(data) > 192 {
			data = data[:192]
		}
		schemes := []Scheme{SchemeBaseline, SchemeIR, SchemeDR, SchemeNS, SchemeAB}
		opt := Options{
			Scheme:        schemes[int(data[0])%len(schemes)],
			Levels:        8,
			Seed:          9,
			EncryptionKey: key,
		}
		o, err := New(opt)
		if err != nil {
			t.Fatal(err)
		}
		nb, bs := o.NumBlocks(), o.BlockSize()
		model := map[int64][]byte{}
		roundTrip := func() {
			var buf bytes.Buffer
			if err := o.Save(&buf); err != nil {
				t.Fatalf("save: %v", err)
			}
			restored, err := Load(opt, &buf)
			if err != nil {
				t.Fatalf("load: %v", err)
			}
			o = restored
		}
		restores := 0
		for i := 1; i+2 < len(data); i += 3 {
			blk := (int64(data[i+1])<<8 | int64(data[i+2])) % nb
			switch data[i] % 4 {
			case 0:
				d := fuzzPayload(bs, blk, data[i+2])
				if err := o.Write(blk, d); err != nil {
					t.Fatalf("write %d: %v", blk, err)
				}
				model[blk] = d
			case 1:
				got, err := o.Read(blk)
				if err != nil {
					t.Fatalf("read %d: %v", blk, err)
				}
				want := model[blk]
				if want == nil {
					want = make([]byte, bs)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("block %d corrupted", blk)
				}
			case 2:
				if err := o.Access(blk); err != nil {
					t.Fatalf("access %d: %v", blk, err)
				}
			case 3:
				// Bound restores: each is a full-state gob round trip.
				if restores < 6 {
					roundTrip()
					restores++
				}
			}
		}
		roundTrip()
		blocks := make([]int64, 0, len(model))
		for blk := range model {
			blocks = append(blocks, blk)
		}
		sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
		for _, blk := range blocks {
			got, err := o.Read(blk)
			if err != nil {
				t.Fatalf("final read %d: %v", blk, err)
			}
			if !bytes.Equal(got, model[blk]) {
				t.Fatalf("block %d lost across checkpoint", blk)
			}
		}
		if err := o.CheckIntegrity(); err != nil {
			t.Fatal(err)
		}
	})
}

// deltaFuzzBase builds the fixed small instance hostile delta streams
// are applied against, after a short warm-up so its state is non-trivial.
func deltaFuzzBase(t testing.TB) *ORAM {
	o, err := New(Options{Scheme: SchemeAB, Levels: 8, Seed: 13, EncryptionKey: key})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 24; i++ {
		blk := (i * 19) % o.NumBlocks()
		if i%4 == 0 {
			if err := o.Write(blk, fuzzPayload(o.BlockSize(), blk, byte(i))); err != nil {
				t.Fatal(err)
			}
		} else if err := o.Access(blk); err != nil {
			t.Fatal(err)
		}
	}
	return o
}

// deltaFuzz holds instances shared across fuzz executions: rebuilding
// an ORAM per exec dominates the instrumented run time and every
// assertion below is state-independent (ApplyDelta must never panic on
// any instance, and single-bit corruption is rejected at the frame CRC
// layer before any state is consulted), so reuse is sound. Workers
// restart on failure, so the lazy init also reruns after a crash.
var deltaFuzz struct {
	once    sync.Once
	hostile *ORAM // absorbs hostile streams; state may drift arbitrarily
	src     *ORAM // stays healthy; produces genuine deltas to corrupt
	cut     uint64
}

// FuzzDeltaDecode exercises the delta stream decoder two ways. First,
// the raw input bytes are fed straight to ApplyDelta — hostile frames,
// truncations, and gob garbage must surface as errors, never panics or
// unbounded allocations. Second, the input seeds a byte flip in a
// genuine SaveDelta stream, which the frame CRCs must always reject.
func FuzzDeltaDecode(f *testing.F) {
	// Seed with a genuine delta stream so the corpus starts structurally
	// valid, plus framing edge cases.
	seedSrc := deltaFuzzBase(f)
	cutSeed := seedSrc.CutEpoch()
	for i := int64(0); i < 12; i++ {
		seedSrc.Access(i % seedSrc.NumBlocks())
	}
	var seed bytes.Buffer
	seedSrc.SaveDelta(&seed, cutSeed)
	f.Add(seed.Bytes()[:64])
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1, 0, 0, 0, 0, 'H'})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 'E'})
	f.Fuzz(func(t *testing.T, data []byte) {
		deltaFuzz.once.Do(func() {
			deltaFuzz.hostile = deltaFuzzBase(t)
			deltaFuzz.src = deltaFuzzBase(t)
			deltaFuzz.cut = deltaFuzz.src.CutEpoch()
		})
		_ = deltaFuzz.hostile.ApplyDelta(bytes.NewReader(data)) // must not panic

		if len(data) == 0 {
			return
		}
		src := deltaFuzz.src
		for i := int64(0); i < 2; i++ {
			if err := src.Access((int64(data[0]) + i*7) % src.NumBlocks()); err != nil {
				t.Fatal(err)
			}
		}
		var delta bytes.Buffer
		next, err := src.SaveDelta(&delta, deltaFuzz.cut)
		if err != nil {
			t.Fatal(err)
		}
		deltaFuzz.cut = next
		stream := append([]byte(nil), delta.Bytes()...)
		flip := int(data[0]) % len(stream)
		var bit byte = 1
		if len(data) > 1 {
			bit = 1 << (data[1] % 8)
		}
		stream[flip] ^= bit
		if err := deltaFuzz.hostile.ApplyDelta(bytes.NewReader(stream)); err == nil {
			t.Fatalf("single-bit corruption at byte %d went undetected", flip)
		}
	})
}
