package aboram

import (
	"bytes"
	"testing"
)

var key = []byte("0123456789abcdef")

func TestDefaults(t *testing.T) {
	o, err := New(Options{Levels: 10})
	if err != nil {
		t.Fatal(err)
	}
	if o.NumBlocks() <= 0 || o.BlockSize() != 64 {
		t.Fatalf("geometry: %d blocks x %d B", o.NumBlocks(), o.BlockSize())
	}
	if o.Encrypted() {
		t.Fatal("no key given but Encrypted() true")
	}
	if err := o.Access(0); err != nil {
		t.Fatal(err)
	}
	if _, err := o.Read(0); err == nil {
		t.Fatal("Read without key accepted")
	}
	if err := o.Write(0, make([]byte, 64)); err == nil {
		t.Fatal("Write without key accepted")
	}
}

func TestBadOptions(t *testing.T) {
	if _, err := New(Options{Levels: 4}); err == nil {
		t.Fatal("tiny tree accepted")
	}
	if _, err := New(Options{Scheme: "nope", Levels: 10}); err == nil {
		t.Fatal("unknown scheme accepted")
	}
	if _, err := New(Options{Levels: 10, EncryptionKey: []byte("short")}); err == nil {
		t.Fatal("bad key accepted")
	}
}

func TestEncryptedRoundTrip(t *testing.T) {
	o, err := New(Options{Levels: 10, EncryptionKey: key, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !o.Encrypted() {
		t.Fatal("key given but Encrypted() false")
	}
	want := map[int64][]byte{}
	for i := int64(0); i < 40; i++ {
		blk := (i * 31) % o.NumBlocks()
		data := bytes.Repeat([]byte{byte(i + 1)}, o.BlockSize())
		if err := o.Write(blk, data); err != nil {
			t.Fatal(err)
		}
		want[blk] = data
	}
	// Churn.
	for i := int64(0); i < 1500; i++ {
		if err := o.Access((i * 2654435761) % o.NumBlocks()); err != nil {
			t.Fatal(err)
		}
	}
	for blk, data := range want {
		got, err := o.Read(blk)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("block %d corrupted", blk)
		}
	}
	if err := o.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestStatsPopulated(t *testing.T) {
	o, err := New(Options{Scheme: SchemeAB, Levels: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 2000; i++ {
		if err := o.Access(i % o.NumBlocks()); err != nil {
			t.Fatal(err)
		}
	}
	st := o.Stats()
	if st.Accesses != 2000 || st.EvictPaths == 0 || st.EarlyReshuffles == 0 {
		t.Fatalf("stats implausible: %+v", st)
	}
	if st.StashOverflows != 0 {
		t.Fatalf("overflows: %+v", st)
	}
	if st.ExtendRatio <= 0 {
		t.Fatalf("AB scheme never extended: %+v", st)
	}
}

func TestSchemesSpaceOrdering(t *testing.T) {
	space := map[Scheme]uint64{}
	for _, s := range []Scheme{SchemeBaseline, SchemeDR, SchemeNS, SchemeAB} {
		o, err := New(Options{Scheme: s, Levels: 12})
		if err != nil {
			t.Fatal(err)
		}
		space[s] = o.SpaceBytes()
		if o.Utilization() <= 0 {
			t.Fatalf("%s: zero utilization", s)
		}
	}
	if !(space[SchemeAB] < space[SchemeDR] && space[SchemeDR] < space[SchemeNS] && space[SchemeNS] < space[SchemeBaseline]) {
		t.Fatalf("space ordering violated: %v", space)
	}
}

func TestUnwrittenReadsZero(t *testing.T) {
	o, err := New(Options{Levels: 10, EncryptionKey: key})
	if err != nil {
		t.Fatal(err)
	}
	got, err := o.Read(5)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, o.BlockSize())) {
		t.Fatal("unwritten block not zero")
	}
}
