#!/bin/sh
# The full verification gate (also reachable as `make check`):
# vet + build + tests + the race-detector pass over the concurrent
# packages (the sim orchestrator's worker pool, the ringoram engine, the
# serving layer's scheduler/TCP front end, and the durability stack with
# its fault injector), race-mode crash-recovery and exactly-once smokes
# (kill-recover oracle in both full-snapshot and delta-chain modes,
# the live-reshard kill-recover oracle in forward and rollback
# directions, the replication failover oracle with its mid-frame kill
# sites and fencing check, retry/group-commit schedules, single- and
# multi-shard chaos soak plus its delta-, reshard-, and
# replication-failover-mode variants; internal/check),
# a race-mode pass of the XOR fast-path oracle (the sweep-shaped
# differential oracle with Config.XORRead on) and of the shard
# oracle/isolation/leakage audits (including the mid-migration audit),
# then a short-budget fuzz smoke over the ten native fuzz targets.
# Longer campaigns: `make fuzz FUZZTIME=10m`, `make crash`,
# `make soak SOAKTIME=60s`, or see EXPERIMENTS.md.
set -eux

go vet ./...
go build ./...
go test ./...
go test -race ./internal/sim ./internal/server/... ./internal/durable ./internal/faults
go test -race -short -run '^TestCrashRecoverySchedules$|^TestCrashRecoveryDeltaSchedules$|^TestReshardKillRecover|^TestFailoverSmoke$|^TestRetrySchedules$|^TestGroupCommitSchedules$|^TestChaosSoak|^TestXORSweepOracle$|^TestXORRemoteSlotsCovered$|^TestShardOracleClean$|^TestShardIsolation$|^TestShardLeak' ./internal/check

FUZZTIME="${FUZZTIME:-5s}"
go test -run='^$' -fuzz='^FuzzAccess$' -fuzztime="$FUZZTIME" ./internal/ringoram
go test -run='^$' -fuzz='^FuzzCheckpointRoundTrip$' -fuzztime="$FUZZTIME" ./aboram
go test -run='^$' -fuzz='^FuzzDeltaDecode$' -fuzztime="$FUZZTIME" ./aboram
go test -run='^$' -fuzz='^FuzzTraceParse$' -fuzztime="$FUZZTIME" ./internal/trace
go test -run='^$' -fuzz='^FuzzWireDecode$' -fuzztime="$FUZZTIME" ./internal/server/wire
go test -run='^$' -fuzz='^FuzzShardRoute$' -fuzztime="$FUZZTIME" ./internal/server
go test -run='^$' -fuzz='^FuzzReplStream$' -fuzztime="$FUZZTIME" ./internal/server/wire
go test -run='^$' -fuzz='^FuzzWALReplay$' -fuzztime="$FUZZTIME" ./internal/durable
go test -run='^$' -fuzz='^FuzzReshardJournal$' -fuzztime="$FUZZTIME" ./internal/durable
go test -run='^$' -fuzz='^FuzzXORPeel$' -fuzztime="$FUZZTIME" ./internal/secmem
