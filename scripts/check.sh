#!/bin/sh
# The full verification gate (also reachable as `make check`):
# vet + build + tests + the race-detector pass over the concurrent
# packages (the sim orchestrator's worker pool and the ringoram engine).
set -eux

go vet ./...
go build ./...
go test ./...
go test -race ./internal/sim
