// Command aboramd serves AB-ORAM over TCP: the deployment shape the
// serving layer targets, with many clients multiplexed onto oblivious
// storage through internal/server's batching scheduler.
//
// Usage:
//
//	aboramd                                  # AB scheme, 12 levels, 127.0.0.1:7314
//	aboramd -addr :7314 -levels 14 -batch 32 # bigger tree, wider coalescing
//	aboramd -maxconns 64 -idle 30s           # front-end limits
//	aboramd -shards 4                        # 4 trees, block b on shard b mod 4
//	aboramd -data-dir d -reshard 3           # live-migrate to 3 shards at boot
//	aboramd -data-dir d -ack replica         # semi-sync: ack after standby fsync
//	aboramd -data-dir r -replica-of host:7314 # warm standby mirroring host:7314
//
// With -shards P the daemon partitions the block address space across P
// independent ORAM trees (stable modulo routing), each behind its own
// scheduler goroutine — throughput scales with cores because different
// shards serve in parallel while each tree keeps the totally ordered
// access sequence its obliviousness argument needs. The trade-off: the
// shard index of every access is the low log2(P) bits of its block id,
// visible to an observer of per-shard traffic (see README, "Sharded
// serving"). -shards 1 (the default) is observationally identical to the
// unsharded daemon.
//
// With -data-dir the store is crash-safe: every acknowledged write is
// appended to a write-ahead log (fsynced per -sync-every) and the full
// instance is snapshotted every -snapshot-every writes; on start the
// daemon recovers the newest snapshot plus the WAL suffix, discarding at
// most a torn final record. Under -shards P with P > 1 each shard keeps
// its own snapshot+WAL under <data-dir>/shard-<i>, all recovered on
// start; shard checkpoint schedules are phase-staggered so the fleet
// never pauses in lockstep. Without -data-dir state lives in memory and
// dies with the process (the pre-durability behavior).
//
// -delta-snapshots makes checkpoints incremental: most rotations
// capture only the state touched since the previous cut (a pause
// proportional to the dirty set, not the tree) and publish in the
// background while serving continues, with a full base image every
// -base-every rotations bounding the recovery chain. -compact-every N
// additionally rewrites the live WAL after N appends, shrinking
// superseded whole-block writes to id-only stubs. Both compose with
// -group-commit and -shards; recovery reads either layout regardless of
// the current flags.
//
// Live resharding (-reshard P′, or the OpReshard admin op at runtime)
// migrates a serving deployment to a different shard count without
// downtime: a fresh fleet of P′ trees is opened under
// <data-dir>/gen-<g>/shard-<i>, a background copier streams blocks over
// while dual routing serves every block from whichever layout owns it,
// and progress is journaled crash-safely in <data-dir>/reshard.log — a
// daemon killed mid-migration resumes (or finishes rolling back) on the
// next start. The journal, not the -shards flag, is authoritative for
// the serving layout once a migration has ever run. See README, "Live
// resharding".
//
// Warm-standby replication: a durable primary serves the replication
// sub-protocol on its ordinary port — a second daemon started with
// -replica-of <addrs> dials it, mirrors every shard's snapshot+WAL
// byte-for-byte into its own -data-dir, and acknowledges durable
// watermarks. With -ack=replica the primary acknowledges a client
// write only after the standby has fsynced it (semi-sync; a slow or
// partitioned link degrades to local-only acks after a bounded wait
// rather than wedging service). The standby refuses data ops (clients
// rotate to the primary via its not-primary status) until the
// OpPromote admin op stops the mirror, opens the mirrored fleet,
// bumps the fencing term, and swaps it in as the serving backend —
// after which the deposed primary's stale stream is rejected
// (split-brain safe) and the promoted node itself ships to the next
// standby. Replication covers the boot-time layout: detach standbys
// before starting a live reshard. See README, "Replication &
// failover".
//
// The daemon drains gracefully on SIGINT/SIGTERM: it stops accepting,
// lets in-flight connections finish (up to -drain), serves everything
// already queued, then prints the scheduler counters and exits. SIGUSR1
// dumps the live scheduler, front-end, durability, and migration
// counters without disturbing service.
//
// The demo key baked into -key is for benchmarking only; a deployment
// would inject a real key (and real entropy via -seed).
package main

import (
	"context"
	"encoding/hex"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/aboram"
	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/server"
	"repro/internal/server/wire"
	"repro/internal/vfs"
)

func main() {
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM, syscall.SIGUSR1)
	if err := run(os.Args[1:], os.Stdout, stop, nil); err != nil {
		fmt.Fprintln(os.Stderr, "aboramd:", err)
		os.Exit(1)
	}
}

// devKey is the well-known demo encryption key (16 bytes of hex).
const devKey = "30313233343536373839616263646566"

// fleetCfg carries everything needed to open one generation's fleet of
// shard engines — the boot path opens the authoritative generation with
// it, and the reshard controller opens target generations.
type fleetCfg struct {
	out     io.Writer
	dataDir string // empty = in-memory engines
	seed    uint64

	oram func(seed uint64) aboram.Options // per-shard options, seed filled in

	snapEvery    int
	snapInterval time.Duration
	syncEvery    int
	groupCommit  bool
	deltaSnaps   bool
	baseEvery    int
	compactEvery int

	// ships, when set, are wired into the fleet of generation shipGen
	// (the boot-time layout) as it opens: shard i's engine streams its
	// durability events through ships[i]. Reshard target generations are
	// never shipped — replication covers the layout the standby joined.
	ships   []*durable.Shipper
	shipGen uint64
}

// open builds generation gen's fleet of shards engines (durable when a
// data dir is configured, in-memory otherwise). Each shard draws from
// its own seed: shard 0 of generation 0 keeps the base seed, so the
// default layout is RNG-identical to the unsharded daemon.
func (fc *fleetCfg) open(gen uint64, shards int) ([]server.Engine, []*durable.Engine, error) {
	engines := make([]server.Engine, shards)
	dengs := make([]*durable.Engine, shards)
	genSeed := server.GenSeed(fc.seed, gen)
	for i := range engines {
		oramOpt := fc.oram(server.ShardSeed(genSeed, i))
		if fc.dataDir == "" {
			o, err := aboram.New(oramOpt)
			if err != nil {
				closeEngines(fc.out, dengs)
				return nil, nil, err
			}
			engines[i] = o
			continue
		}
		dir := durable.ShardDir(fc.dataDir, gen, i, shards)
		var ship *durable.Shipper
		if fc.ships != nil && gen == fc.shipGen && len(fc.ships) == shards {
			ship = fc.ships[i]
		}
		deng, err := durable.Open(durable.Options{
			Ship:             ship,
			Dir:              dir,
			ORAM:             oramOpt,
			SnapshotEvery:    fc.snapEvery,
			SnapshotInterval: fc.snapInterval,
			// Stagger the shards' rotation schedules deterministically: shard
			// i's first checkpoint lands i/P of a period early, so a fleet
			// opened together never pauses (or publishes) in lockstep.
			SnapshotPhase:  (fc.snapEvery * i) / shards,
			DeltaSnapshots: fc.deltaSnaps,
			BaseEvery:      fc.baseEvery,
			CompactEvery:   fc.compactEvery,
			// Checkpoint work rides batch boundaries (the scheduler calls
			// MaybeCheckpoint), so a delta's consistent cut never lands
			// between a write and its acknowledgment.
			DeferCheckpoints: true,
			SyncEvery:        fc.syncEvery,
			GroupCommit:      fc.groupCommit,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(fc.out, "aboramd: "+format+"\n", args...)
			},
		})
		if err != nil {
			closeEngines(fc.out, dengs)
			return nil, nil, fmt.Errorf("gen %d shard %d: %w", gen, i, err)
		}
		rec := deng.Recovery()
		fmt.Fprintf(fc.out, "aboramd: recovered %s: base epoch %d, %d WAL records replayed (%d segments), %d dedup ids",
			dir, rec.BaseEpoch, rec.RecordsReplayed, rec.SegmentsReplayed, rec.IDsRecovered)
		if rec.DeltasApplied > 0 {
			fmt.Fprintf(fc.out, ", %d deltas applied", rec.DeltasApplied)
		}
		if rec.TornTail {
			fmt.Fprint(fc.out, ", torn tail truncated")
		}
		if rec.SnapshotsSkipped > 0 {
			fmt.Fprintf(fc.out, ", %d unreadable snapshots skipped", rec.SnapshotsSkipped)
		}
		if rec.DeltasSkipped > 0 {
			fmt.Fprintf(fc.out, ", %d unreadable deltas skipped", rec.DeltasSkipped)
		}
		fmt.Fprintln(fc.out)
		engines[i] = deng
		dengs[i] = deng
	}
	return engines, dengs, nil
}

// run starts the daemon and blocks until the stop channel fires (or the
// listener fails). onReady, when non-nil, receives the bound address —
// tests use it to learn the port behind ":0".
func run(args []string, out io.Writer, stop <-chan os.Signal, onReady func(net.Addr)) error {
	fs := flag.NewFlagSet("aboramd", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7314", "TCP listen address")
	scheme := fs.String("scheme", "AB", "scheme: Baseline | IR | DR | NS | AB")
	levels := fs.Int("levels", 12, "ORAM tree levels")
	seed := fs.Uint64("seed", 1, "random seed")
	keyHex := fs.String("key", devKey, "16-byte AES key, hex (demo default; empty = pattern-only, no Read/Write)")
	xor := fs.Bool("xor", false, "enable the XOR online fast path: OpXRead answers carry one combined block instead of the full path (requires -key)")
	shards := fs.Int("shards", 1, "independent ORAM trees; block b is served by shard b mod P (leaks the low log2(P) address bits to a per-shard observer)")
	queue := fs.Int("queue", 256, "request queue capacity (admission control), per shard")
	batch := fs.Int("batch", 16, "max requests coalesced per scheduler wakeup (1 = off)")
	maxconns := fs.Int("maxconns", 128, "max concurrent connections (0 = unlimited)")
	idle := fs.Duration("idle", 2*time.Minute, "per-connection idle read deadline (0 = none)")
	writeTO := fs.Duration("write-timeout", 10*time.Second, "per-response write deadline (0 = none)")
	reqTO := fs.Duration("req-timeout", 10*time.Second, "per-request queue+service budget (0 = none)")
	drain := fs.Duration("drain", 10*time.Second, "graceful-shutdown budget for in-flight connections")
	dataDir := fs.String("data-dir", "", "durable data directory (snapshot + WAL); empty = in-memory only")
	snapEvery := fs.Int("snapshot-every", 1024, "with -data-dir: writes between snapshot rotations")
	snapInterval := fs.Duration("snapshot-interval", 0, "with -data-dir: also rotate after this much wall time (0 = off)")
	syncEvery := fs.Int("sync-every", 1, "with -data-dir: fsync the WAL every N writes (1 = zero acknowledged loss)")
	groupCommit := fs.Bool("group-commit", false, "with -data-dir: one WAL fsync per scheduler batch instead of per write (acks stay durable)")
	deltaSnaps := fs.Bool("delta-snapshots", false, "with -data-dir: incremental checkpoints — rotations capture only state touched since the last cut and publish in the background, with a full base every -base-every rotations")
	baseEvery := fs.Int("base-every", 8, "with -delta-snapshots: delta rotations between full base images")
	compactEvery := fs.Int("compact-every", 0, "with -data-dir: rewrite the live WAL segment after N appends, shrinking superseded writes to id stubs (0 = off)")
	reshardTo := fs.Int("reshard", 0, "begin a live migration to this many shards at startup (0 = none); also available at runtime via the OpReshard admin op")
	reshardRange := fs.Int64("reshard-range", 64, "blocks fenced and copied per migration step (smaller = shorter write stalls)")
	reshardPace := fs.Duration("reshard-pace", 0, "sleep between migration steps, bounding the copy's share of scheduler time (0 = as fast as shedding allows)")
	ackMode := fs.String("ack", "local", "write acknowledgment policy with -data-dir: local (primary fsync) or replica (semi-sync: ack after the standby fsyncs the shipped record; degrades to local after a bounded wait when the link is down)")
	replicaOf := fs.String("replica-of", "", "run as a warm standby of the primary at this comma-separated address list: mirror its log into -data-dir and refuse data ops until OpPromote")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var key []byte
	if *keyHex != "" {
		k, err := hex.DecodeString(*keyHex)
		if err != nil {
			return fmt.Errorf("bad -key: %w", err)
		}
		key = k
	}
	if *xor && key == nil {
		return fmt.Errorf("-xor requires -key (the XOR fast path serves encrypted content)")
	}
	if *shards < 1 || *shards > 1<<16-1 {
		return fmt.Errorf("-shards %d out of range [1, %d]", *shards, 1<<16-1)
	}
	if *reshardTo < 0 || *reshardTo > 1<<16-1 {
		return fmt.Errorf("-reshard %d out of range [1, %d]", *reshardTo, 1<<16-1)
	}
	if *ackMode != "local" && *ackMode != "replica" {
		return fmt.Errorf("-ack %q: want local or replica", *ackMode)
	}
	if *ackMode == "replica" && *dataDir == "" {
		return fmt.Errorf("-ack=replica requires -data-dir (semi-sync gates acks on the standby fsyncing the shipped log)")
	}
	if *replicaOf != "" {
		if *dataDir == "" {
			return fmt.Errorf("-replica-of requires -data-dir (the standby mirrors the primary's log into it)")
		}
		if *reshardTo != 0 {
			return fmt.Errorf("-replica-of is incompatible with -reshard (a standby mirrors one fixed layout)")
		}
	}

	fc := &fleetCfg{
		out:     out,
		dataDir: *dataDir,
		seed:    *seed,
		oram: func(shardSeed uint64) aboram.Options {
			return aboram.Options{
				Scheme:        core.Scheme(*scheme),
				Levels:        *levels,
				Seed:          shardSeed,
				EncryptionKey: key,
				XORRead:       *xor,
			}
		},
		snapEvery:    *snapEvery,
		snapInterval: *snapInterval,
		syncEvery:    *syncEvery,
		groupCommit:  *groupCommit,
		deltaSnaps:   *deltaSnaps,
		baseEvery:    *baseEvery,
		compactEvery: *compactEvery,
	}

	if *replicaOf != "" {
		return runReplica(replicaArgs{
			out: out, stop: stop, onReady: onReady, fc: fc,
			addr:      *addr,
			primaries: strings.Split(*replicaOf, ","),
			shards:    *shards,
			semiSync:  *ackMode == "replica",
			queue:     *queue, batch: *batch, maxconns: *maxconns,
			idle: *idle, writeTO: *writeTO, reqTO: *reqTO, drain: *drain,
		})
	}

	// The reshard journal — not the -shards flag — is authoritative for
	// the serving layout once a migration has ever run: it knows which
	// generation survived the last cutover and whether one is mid-flight.
	lay := durable.ReshardLayout{Shards: *shards}
	var journal *durable.ReshardJournal
	if *dataDir != "" {
		var err error
		journal, err = durable.OpenReshardJournal(vfs.OS{}, *dataDir)
		if err != nil {
			return err
		}
		recs := journal.Records()
		def := *shards
		if len(recs) > 0 {
			// The journal's first Begin record pins the pre-reshard shard
			// count; trusting it (rather than the flag) keeps a restart with
			// a stale -shards from refusing a layout the journal proves.
			def = 0
		}
		if lay, err = durable.ResolveReshard(recs, def); err != nil {
			return fmt.Errorf("reshard journal: %w", err)
		}
		if lay.Shards != *shards {
			fmt.Fprintf(out, "aboramd: reshard journal overrides -shards %d: serving generation %d with %d shards\n",
				*shards, lay.Gen, lay.Shards)
		}
	}

	// Durable fleets ship their log: the replication sub-protocol is
	// served on the ordinary port (OpReplJoin) whether or not a standby
	// ever attaches. The shippers must exist before the engines open.
	if *dataDir != "" {
		fc.ships = makeShips(lay.Shards, *ackMode == "replica", out)
		fc.shipGen = lay.Gen
	}

	engines, dengs, err := fc.open(lay.Gen, lay.Shards)
	if err != nil {
		return err
	}
	srv, err := server.NewSharded(engines, server.Config{Queue: *queue, Batch: *batch})
	if err != nil {
		closeEngines(out, dengs)
		return err
	}
	srv.SetGeneration(lay.Gen)

	rc := &reshardController{
		fc:        fc,
		srv:       srv,
		journal:   journal,
		rangeSize: *reshardRange,
		pace:      *reshardPace,
		gen:       lay.Gen,
		maxGen:    lay.MaxGen,
		cur:       dengs,
	}
	tcfg := server.TCPConfig{
		MaxConns:       *maxconns,
		IdleTimeout:    *idle,
		WriteTimeout:   *writeTO,
		RequestTimeout: *reqTO,
		Reshard:        rc.handle,
	}
	if fc.ships != nil {
		hub := &server.ReplicaHub{
			Shippers: fc.ships,
			Term:     fleetTerm(dengs),
			Nudge: func(shard int) {
				srv.Access(context.Background(), int64(shard))
			},
			Logf: func(format string, args ...any) {
				fmt.Fprintf(out, "aboramd: "+format+"\n", args...)
			},
		}
		tcfg.ReplJoin = hub.Serve
		tcfg.Replication = hub.Info
		// OpPromote against a node already serving as primary is an
		// idempotent no-op: an operator script retrying a failover
		// converges instead of erroring.
		tcfg.Promote = func() (wire.PromoteInfo, error) {
			return wire.PromoteInfo{Term: hub.Term(), Shards: srv.Shards()}, nil
		}
	}
	tsrv := server.NewTCP(srv, tcfg)
	if *dataDir != "" {
		// Seed the retry-dedup window with the ids recovered from every
		// shard's snapshot header and WAL: a client write retried across
		// this restart is answered from the window, not applied twice.
		// (The window skips ids it already holds, so the per-shard seeding
		// order is immaterial.)
		for _, deng := range dengs {
			tsrv.SeedDedup(deng.RecentWriteIDs())
		}
	}

	// A daemon killed mid-migration resumes it before serving: the target
	// fleet recovers from its own snapshots+WALs, dual routing picks up at
	// the journaled watermark, and the copier continues (or keeps rolling
	// back). Retried client writes are deduped against both fleets.
	if lay.Active != nil {
		if err := rc.resume(tsrv, lay.Active); err != nil {
			srv.Close()
			closeEngines(out, rc.engines())
			return fmt.Errorf("resuming reshard to gen %d: %w", lay.Active.Gen, err)
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		srv.Close()
		closeEngines(out, rc.engines())
		return err
	}
	if onReady != nil {
		onReady(ln.Addr())
	}
	fmt.Fprintf(out, "aboramd: serving %s (levels=%d, %d blocks of %d B, encrypted=%v, xor=%v, shards=%d, gen=%d) on %s\n",
		*scheme, *levels, srv.NumBlocks(), srv.BlockSize(), srv.Encrypted(), *xor, srv.Shards(), srv.Generation(), ln.Addr())
	fmt.Fprintf(out, "aboramd: queue=%d batch=%d maxconns=%d shards=%d\n", *queue, *batch, *maxconns, srv.Shards())
	if fc.ships != nil {
		fmt.Fprintf(out, "aboramd: replication: shipping enabled, ack policy %s\n", *ackMode)
	}

	if *reshardTo > 0 {
		if err := rc.start(*reshardTo); err != nil {
			fmt.Fprintf(out, "aboramd: -reshard %d: %v\n", *reshardTo, err)
		}
	}

	served := make(chan error, 1)
	go func() { served <- tsrv.Serve(ln) }()

	// Serve until a terminating signal (or the listener fails). SIGUSR1
	// dumps the live counters and keeps serving.
wait:
	for {
		select {
		case err := <-served:
			srv.Close()
			closeEngines(out, rc.engines())
			return err
		case sig := <-stop:
			if sig == syscall.SIGUSR1 {
				dumpCounters(out, srv, tsrv, rc.engines())
				dumpReplication(out, fc.ships)
				continue
			}
			fmt.Fprintf(out, "aboramd: %v, draining (budget %v)\n", sig, *drain)
			break wait
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := tsrv.Shutdown(ctx); err != nil {
		fmt.Fprintf(out, "aboramd: forced close of lingering connections: %v\n", err)
	}
	<-served    // Serve has returned ErrServerClosed
	srv.Close() // serve everything already admitted on every shard, then stop
	closeEngines(out, rc.engines())
	if err := dumpCounters(out, srv, tsrv, rc.engines()); err != nil {
		return err
	}
	dumpReplication(out, fc.ships)
	fmt.Fprintln(out, "aboramd: bye")
	return nil
}

// reshardController owns the daemon side of live resharding: the
// journal, the durable engines of every open generation, and the
// translation from OpReshard admin commands to Resharder calls.
type reshardController struct {
	fc        *fleetCfg
	srv       *server.Sharded
	journal   *durable.ReshardJournal // nil = in-memory (volatile) migrations
	rangeSize int64
	pace      time.Duration

	mu     sync.Mutex
	gen    uint64            // authoritative generation
	maxGen uint64            // highest generation the journal mentions
	cur    []*durable.Engine // serving fleet (nil entries when in-memory)
	target []*durable.Engine // in-flight migration's fleet, nil when none
}

// genJournal binds the shared on-disk journal to one migration's
// generation, giving the Resharder the MigrationJournal it needs.
type genJournal struct {
	j   *durable.ReshardJournal
	gen uint64
	to  int
}

func (g genJournal) RecordRange(w int64) error {
	return g.j.Append(durable.ReshardRecord{Op: durable.ReshardRange, Gen: g.gen, Watermark: w})
}
func (g genJournal) RecordCutover() error {
	return g.j.Append(durable.ReshardRecord{Op: durable.ReshardCutover, Gen: g.gen, To: g.to})
}
func (g genJournal) RecordAbortBegin() error {
	return g.j.Append(durable.ReshardRecord{Op: durable.ReshardAbortBegin, Gen: g.gen})
}
func (g genJournal) RecordAborted() error {
	return g.j.Append(durable.ReshardRecord{Op: durable.ReshardAborted, Gen: g.gen})
}

// engines snapshots every durable engine the controller currently owns
// (serving fleet plus any in-flight migration target fleet).
func (rc *reshardController) engines() []*durable.Engine {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	out := append([]*durable.Engine(nil), rc.cur...)
	return append(out, rc.target...)
}

// handle serves one OpReshard admin command.
func (rc *reshardController) handle(cmd wire.ReshardCmd, target int) (wire.ReshardInfo, error) {
	var err error
	switch cmd {
	case wire.ReshardCmdStatus:
		// fall through to the status snapshot
	case wire.ReshardCmdStart:
		err = rc.start(target)
	case wire.ReshardCmdPause, wire.ReshardCmdResume, wire.ReshardCmdAbort:
		r := rc.srv.CurrentReshard()
		if r == nil {
			err = fmt.Errorf("reshard: no migration to %s", cmd)
			break
		}
		switch cmd {
		case wire.ReshardCmdPause:
			err = r.Pause()
		case wire.ReshardCmdResume:
			err = r.Resume()
		default:
			err = r.Abort()
		}
	default:
		err = fmt.Errorf("reshard: unknown command %d", uint8(cmd))
	}
	if err != nil {
		return wire.ReshardInfo{}, err
	}
	return rc.srv.ReshardInfo(), nil
}

// start opens a fresh fleet of `to` shard trees under the next
// generation, journals the migration begin durably, and launches the
// background copier.
func (rc *reshardController) start(to int) error {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if r := rc.srv.CurrentReshard(); r != nil {
		if ph := r.Status().Phase; ph == wire.ReshardPhaseRunning || ph == wire.ReshardPhasePaused ||
			ph == wire.ReshardPhaseAborting || ph == wire.ReshardPhaseFailed {
			return fmt.Errorf("reshard: migration already %s", ph)
		}
	}
	from := rc.srv.Shards()
	if to == from {
		return fmt.Errorf("reshard: already serving %d shards", from)
	}
	// Replication covers the layout the standby joined: a migration would
	// cut service over to a fleet the standby never hears about.
	for _, s := range rc.fc.ships {
		if s != nil && s.Stats().Attached {
			return fmt.Errorf("reshard: unsupported while a standby is attached (detach the replica first)")
		}
	}
	if to < 1 || to > 1<<16-1 {
		return fmt.Errorf("reshard: target %d out of range [1, %d]", to, 1<<16-1)
	}
	gen := rc.maxGen + 1
	engines, dengs, err := rc.fc.open(gen, to)
	if err != nil {
		return err
	}
	var mj server.MigrationJournal
	if rc.journal != nil {
		if err := rc.journal.Append(durable.ReshardRecord{
			Op: durable.ReshardBegin, Gen: gen, From: from, To: to,
		}); err != nil {
			closeEngines(rc.fc.out, dengs)
			return err
		}
		mj = genJournal{rc.journal, gen, to}
	}
	r, err := rc.srv.BeginReshard(engines, server.ReshardConfig{
		Journal:   mj,
		RangeSize: rc.rangeSize,
		Pace:      rc.pace,
		Gen:       gen,
		OnDone:    func(ph wire.ReshardPhase, err error) { rc.finished(gen, ph, err) },
	})
	if err != nil {
		// Retire the journaled Begin with an immediate (empty) rollback so
		// the next start does not try to resume a migration that never ran.
		if rc.journal != nil {
			if e := rc.journal.Append(durable.ReshardRecord{Op: durable.ReshardAbortBegin, Gen: gen}); e == nil {
				rc.journal.Append(durable.ReshardRecord{Op: durable.ReshardAborted, Gen: gen})
			}
		}
		closeEngines(rc.fc.out, dengs)
		return err
	}
	rc.maxGen = gen
	rc.target = dengs
	fmt.Fprintf(rc.fc.out, "aboramd: reshard: migrating %d -> %d shards (generation %d)\n", from, to, gen)
	go r.Run()
	return nil
}

// resume relaunches a migration the journal says was in flight when the
// daemon last stopped.
func (rc *reshardController) resume(tsrv *server.TCPServer, p *durable.ReshardProgress) error {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	engines, dengs, err := rc.fc.open(p.Gen, p.To)
	if err != nil {
		return err
	}
	for _, deng := range dengs {
		if deng != nil {
			tsrv.SeedDedup(deng.RecentWriteIDs())
		}
	}
	r, err := rc.srv.BeginReshard(engines, server.ReshardConfig{
		Journal:   genJournal{rc.journal, p.Gen, p.To},
		RangeSize: rc.rangeSize,
		Pace:      rc.pace,
		Watermark: p.Watermark,
		Aborting:  p.Aborting,
		Gen:       p.Gen,
		OnDone:    func(ph wire.ReshardPhase, err error) { rc.finished(p.Gen, ph, err) },
	})
	if err != nil {
		closeEngines(rc.fc.out, dengs)
		return err
	}
	rc.target = dengs
	verb := "resuming"
	if p.Aborting {
		verb = "resuming rollback of"
	}
	fmt.Fprintf(rc.fc.out, "aboramd: reshard: %s migration %d -> %d shards (generation %d) at watermark %d\n",
		verb, p.From, p.To, p.Gen, p.Watermark)
	go r.Run()
	return nil
}

// finished is the Resharder's OnDone: it retires whichever fleet lost
// (the old one after a cutover, the target after a rollback), closes its
// engines, and prunes dead generation directories.
func (rc *reshardController) finished(gen uint64, phase wire.ReshardPhase, err error) {
	rc.mu.Lock()
	var retired []*durable.Engine
	switch phase {
	case wire.ReshardPhaseDone:
		retired, rc.cur, rc.target = rc.cur, rc.target, nil
		rc.gen = gen
	case wire.ReshardPhaseAborted:
		retired, rc.target = rc.target, nil
	}
	keep := rc.gen
	maxGen := rc.maxGen
	rc.mu.Unlock()

	switch phase {
	case wire.ReshardPhaseDone, wire.ReshardPhaseAborted:
		closeEngines(rc.fc.out, retired)
		if rc.journal != nil {
			if n := durable.PruneGens(vfs.OS{}, rc.fc.dataDir, maxGen, keep); n > 0 {
				fmt.Fprintf(rc.fc.out, "aboramd: reshard: pruned %d dead generation directories\n", n)
			}
		}
		fmt.Fprintf(rc.fc.out, "aboramd: reshard: %s (generation %d, now %d shards)\n", phase, rc.srv.Generation(), rc.srv.Shards())
	default:
		// Failed: both fleets stay open — routing keeps serving the last
		// durable watermark, and a restart resumes the migration.
		fmt.Fprintf(rc.fc.out, "aboramd: reshard: migration to generation %d failed: %v (serving continues; restart resumes)\n", gen, err)
	}
}

// replicaArgs carries the flag subset the standby serving path needs.
type replicaArgs struct {
	out       io.Writer
	stop      <-chan os.Signal
	onReady   func(net.Addr)
	fc        *fleetCfg
	addr      string
	primaries []string
	shards    int
	semiSync  bool
	queue     int
	batch     int
	maxconns  int
	idle      time.Duration
	writeTO   time.Duration
	reqTO     time.Duration
	drain     time.Duration
}

// runReplica is the -replica-of serving loop: mirror the primary's log
// into the data directory, refuse data ops (clients rotate to the
// primary), and stand ready for OpPromote — which stops the mirror,
// opens the mirrored fleet under a bumped fencing term, and swaps it in
// as the serving backend.
func runReplica(a replicaArgs) error {
	// Geometry must match the primary's: both daemons are launched from
	// the same configuration. A probe tree derives it without state.
	probe, err := aboram.New(a.fc.oram(server.ShardSeed(server.GenSeed(a.fc.seed, 0), 0)))
	if err != nil {
		return err
	}
	logf := func(format string, args ...any) {
		fmt.Fprintf(a.out, "aboramd: "+format+"\n", args...)
	}

	sess := server.NewReplicaSession(server.ReplicaSessionConfig{
		Addrs:   a.primaries,
		DataDir: a.fc.dataDir,
		Shards:  a.shards,
		Logf:    logf,
	})
	go sess.Run()

	// Promotion state: empty until OpPromote succeeds, after which this
	// node is a full primary — serving fleet plus a hub shipping to the
	// next standby.
	var (
		mu    sync.Mutex
		psrv  *server.Sharded
		pengs []*durable.Engine
		hub   *server.ReplicaHub
	)
	term := func() uint64 {
		mu.Lock()
		defer mu.Unlock()
		if pengs != nil {
			return fleetTerm(pengs)()
		}
		return sess.Info().Term
	}
	stub := server.NewReplicaStub(probe.NumBlocks()*int64(a.shards), probe.BlockSize(),
		probe.Encrypted(), a.shards, term)

	var tsrv *server.TCPServer
	promote := func() (wire.PromoteInfo, error) {
		mu.Lock()
		defer mu.Unlock()
		if psrv != nil {
			// Idempotent: a retried promote reports the serving state.
			return wire.PromoteInfo{Term: fleetTerm(pengs)(), Shards: a.shards}, nil
		}
		// The mirrors must be quiescent before recovery opens their
		// directories.
		sess.Stop()
		a.fc.ships = makeShips(a.shards, a.semiSync, a.out)
		a.fc.shipGen = 0
		engines, dengs, err := a.fc.open(0, a.shards)
		if err != nil {
			return wire.PromoteInfo{}, fmt.Errorf("promote: %w", err)
		}
		newTerm := fleetTerm(dengs)() + 1
		for _, d := range dengs {
			if err := d.SetTerm(newTerm); err != nil {
				closeEngines(a.out, dengs)
				return wire.PromoteInfo{}, fmt.Errorf("promote: fencing term: %w", err)
			}
		}
		srv, err := server.NewSharded(engines, server.Config{Queue: a.queue, Batch: a.batch})
		if err != nil {
			closeEngines(a.out, dengs)
			return wire.PromoteInfo{}, fmt.Errorf("promote: %w", err)
		}
		for _, d := range dengs {
			tsrv.SeedDedup(d.RecentWriteIDs())
		}
		hub = &server.ReplicaHub{
			Shippers: a.fc.ships,
			Term:     fleetTerm(dengs),
			Nudge: func(shard int) {
				srv.Access(context.Background(), int64(shard))
			},
			Logf: logf,
		}
		psrv, pengs = srv, dengs
		tsrv.SwapBackend(srv)
		fmt.Fprintf(a.out, "aboramd: promoted to primary at term %d (%d shards)\n", newTerm, a.shards)
		return wire.PromoteInfo{Term: newTerm, Shards: a.shards}, nil
	}

	tsrv = server.NewTCP(stub, server.TCPConfig{
		MaxConns:       a.maxconns,
		IdleTimeout:    a.idle,
		WriteTimeout:   a.writeTO,
		RequestTimeout: a.reqTO,
		Promote:        promote,
		Replication: func() *wire.ReplicationInfo {
			mu.Lock()
			h := hub
			mu.Unlock()
			if h != nil {
				return h.Info()
			}
			return sess.Info()
		},
		ReplJoin: func(conn net.Conn) error {
			mu.Lock()
			h := hub
			mu.Unlock()
			if h == nil {
				return fmt.Errorf("standby: not shipping a log (promote first)")
			}
			return h.Serve(conn)
		},
	})

	ln, err := net.Listen("tcp", a.addr)
	if err != nil {
		sess.Stop()
		return err
	}
	if a.onReady != nil {
		a.onReady(ln.Addr())
	}
	fmt.Fprintf(a.out, "aboramd: standby mirroring %s (%d shards) on %s; data ops refused until promotion\n",
		strings.Join(a.primaries, ","), a.shards, ln.Addr())

	served := make(chan error, 1)
	go func() { served <- tsrv.Serve(ln) }()

	dump := func() {
		mu.Lock()
		srv, dengs := psrv, pengs
		mu.Unlock()
		if srv != nil {
			dumpCounters(a.out, srv, tsrv, dengs)
			dumpReplication(a.out, a.fc.ships)
			return
		}
		si := sess.Info()
		fmt.Fprintf(a.out, "aboramd: standby: attached=%v term=%d applied=%d records\n",
			si.Attached, si.Term, si.AckedSeq)
	}

wait:
	for {
		select {
		case err := <-served:
			sess.Stop()
			mu.Lock()
			srv, dengs := psrv, pengs
			mu.Unlock()
			if srv != nil {
				srv.Close()
				closeEngines(a.out, dengs)
			}
			return err
		case sig := <-a.stop:
			if sig == syscall.SIGUSR1 {
				dump()
				continue
			}
			fmt.Fprintf(a.out, "aboramd: %v, draining (budget %v)\n", sig, a.drain)
			break wait
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), a.drain)
	defer cancel()
	if err := tsrv.Shutdown(ctx); err != nil {
		fmt.Fprintf(a.out, "aboramd: forced close of lingering connections: %v\n", err)
	}
	<-served
	sess.Stop()
	mu.Lock()
	srv, dengs := psrv, pengs
	mu.Unlock()
	if srv != nil {
		srv.Close()
		closeEngines(a.out, dengs)
	}
	dump()
	fmt.Fprintln(a.out, "aboramd: bye")
	return nil
}

// makeShips builds shard i's log shipper for a replication-capable
// primary. semiSync is the -ack=replica policy: the engine acknowledges
// a write only after the standby fsyncs it (bounded by the shipper's
// ack timeout, after which the link degrades to async).
func makeShips(shards int, semiSync bool, out io.Writer) []*durable.Shipper {
	ships := make([]*durable.Shipper, shards)
	for i := range ships {
		ships[i] = &durable.Shipper{
			Shard:    i,
			SemiSync: semiSync,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(out, "aboramd: "+format+"\n", args...)
			},
		}
	}
	return ships
}

// fleetTerm derives the fleet's fencing term: the max across shards.
func fleetTerm(dengs []*durable.Engine) func() uint64 {
	return func() uint64 {
		var t uint64
		for _, d := range dengs {
			if d == nil {
				continue
			}
			if v := d.Term(); v > t {
				t = v
			}
		}
		return t
	}
}

// dumpReplication prints one line per shard's replication shipper; a
// nil slice (in-memory daemon) prints nothing.
func dumpReplication(out io.Writer, ships []*durable.Shipper) {
	for i, s := range ships {
		st := s.Stats()
		fmt.Fprintf(out, "aboramd: shard %d replication: attached=%v shipped=%d acked=%d lag=%d records/%d B degraded=%v, %d boots, %d send errors, %d ack waits (%d timed out)\n",
			i, st.Attached, st.Seq, st.AckedSeq, st.LagRecords, st.LagBytes, st.Degraded,
			st.Boots, st.SendErrors, st.AckWaits, st.AckTimeouts)
	}
}

// closeEngines closes every non-nil durable engine. The schedulers that
// fed them are stopped by now, so the engines are quiescent: each syncs
// and closes its WAL; recovery replays them on the next start.
func closeEngines(out io.Writer, dengs []*durable.Engine) {
	for i, deng := range dengs {
		if deng == nil {
			continue
		}
		if err := deng.Close(); err != nil {
			fmt.Fprintf(out, "aboramd: closing shard %d data dir: %v\n", i, err)
		}
	}
}

// dumpCounters prints the durability, scheduler, migration, and
// front-end counters. SIGUSR1 triggers it on a live daemon; the shutdown
// path reuses it for the final report. With more than one shard,
// durability lines and scheduler tables are printed per shard plus one
// aggregate table.
func dumpCounters(out io.Writer, srv *server.Sharded, tsrv *server.TCPServer, dengs []*durable.Engine) error {
	multi := srv.Shards() > 1
	for i, deng := range dengs {
		if deng == nil {
			continue
		}
		label := "durability"
		if multi || len(dengs) > 1 {
			label = fmt.Sprintf("shard %d durability", i)
		}
		ds := deng.Stats()
		fmt.Fprintf(out, "aboramd: %s: %d writes logged, %d fsyncs (%d batched), %d snapshots + %d deltas (epoch %d), %d compactions, %.1fms checkpoint pause, last checkpoint %d B, %d prune failures\n",
			label, ds.Writes, ds.Syncs, ds.BatchedSyncs, ds.Snapshots, ds.DeltasWritten, deng.Epoch(),
			ds.CompactionRuns, float64(ds.SnapshotPauseNanos)/1e6, ds.LastSnapshotBytes, ds.PruneFailures)
	}
	if info := srv.ReshardInfo(); info.Phase != wire.ReshardPhaseIdle {
		fmt.Fprintf(out, "aboramd: reshard: phase=%s %d->%d shards, watermark %d/%d, serving %d shards (gen %d)\n",
			info.Phase, info.From, info.To, info.Watermark, info.Total, info.Shards, info.Gen)
	}
	title := "aboramd scheduler counters"
	if multi {
		title = fmt.Sprintf("aboramd scheduler counters (aggregate over %d shards)", srv.Shards())
	}
	if err := srv.Metrics().Table(title).WriteText(out); err != nil {
		return err
	}
	if multi {
		for i, m := range srv.ShardMetrics() {
			if err := m.Table(fmt.Sprintf("aboramd scheduler counters, shard %d", i)).WriteText(out); err != nil {
				return err
			}
		}
	}
	if next := srv.NextShardMetrics(); next != nil {
		for i, m := range next {
			if err := m.Table(fmt.Sprintf("aboramd scheduler counters, migration target shard %d", i)).WriteText(out); err != nil {
				return err
			}
		}
	}
	tm := tsrv.Metrics()
	fmt.Fprintf(out, "aboramd: %d connections served, %d refused, %d active; %d retries deduped, %d requests shed\n",
		tm.Accepted, tm.Refused, tm.Active, tm.Deduped, tm.Shed)
	return nil
}
