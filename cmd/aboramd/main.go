// Command aboramd serves AB-ORAM over TCP: the deployment shape the
// serving layer targets, with many clients multiplexed onto oblivious
// storage through internal/server's batching scheduler.
//
// Usage:
//
//	aboramd                                  # AB scheme, 12 levels, 127.0.0.1:7314
//	aboramd -addr :7314 -levels 14 -batch 32 # bigger tree, wider coalescing
//	aboramd -maxconns 64 -idle 30s           # front-end limits
//	aboramd -shards 4                        # 4 trees, block b on shard b mod 4
//
// With -shards P the daemon partitions the block address space across P
// independent ORAM trees (stable modulo routing), each behind its own
// scheduler goroutine — throughput scales with cores because different
// shards serve in parallel while each tree keeps the totally ordered
// access sequence its obliviousness argument needs. The trade-off: the
// shard index of every access is the low log2(P) bits of its block id,
// visible to an observer of per-shard traffic (see README, "Sharded
// serving"). -shards 1 (the default) is observationally identical to the
// unsharded daemon.
//
// With -data-dir the store is crash-safe: every acknowledged write is
// appended to a write-ahead log (fsynced per -sync-every) and the full
// instance is snapshotted every -snapshot-every writes; on start the
// daemon recovers the newest snapshot plus the WAL suffix, discarding at
// most a torn final record. Under -shards P with P > 1 each shard keeps
// its own snapshot+WAL under <data-dir>/shard-<i>, all recovered on
// start; shard checkpoint schedules are phase-staggered so the fleet
// never pauses in lockstep. Without -data-dir state lives in memory and
// dies with the process (the pre-durability behavior).
//
// -delta-snapshots makes checkpoints incremental: most rotations
// capture only the state touched since the previous cut (a pause
// proportional to the dirty set, not the tree) and publish in the
// background while serving continues, with a full base image every
// -base-every rotations bounding the recovery chain. -compact-every N
// additionally rewrites the live WAL after N appends, shrinking
// superseded whole-block writes to id-only stubs. Both compose with
// -group-commit and -shards; recovery reads either layout regardless of
// the current flags.
//
// The daemon drains gracefully on SIGINT/SIGTERM: it stops accepting,
// lets in-flight connections finish (up to -drain), serves everything
// already queued, then prints the scheduler counters and exits. SIGUSR1
// dumps the live scheduler, front-end, and durability counters without
// disturbing service.
//
// The demo key baked into -key is for benchmarking only; a deployment
// would inject a real key (and real entropy via -seed).
package main

import (
	"context"
	"encoding/hex"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/aboram"
	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/server"
)

func main() {
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM, syscall.SIGUSR1)
	if err := run(os.Args[1:], os.Stdout, stop, nil); err != nil {
		fmt.Fprintln(os.Stderr, "aboramd:", err)
		os.Exit(1)
	}
}

// devKey is the well-known demo encryption key (16 bytes of hex).
const devKey = "30313233343536373839616263646566"

// run starts the daemon and blocks until the stop channel fires (or the
// listener fails). onReady, when non-nil, receives the bound address —
// tests use it to learn the port behind ":0".
func run(args []string, out io.Writer, stop <-chan os.Signal, onReady func(net.Addr)) error {
	fs := flag.NewFlagSet("aboramd", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7314", "TCP listen address")
	scheme := fs.String("scheme", "AB", "scheme: Baseline | IR | DR | NS | AB")
	levels := fs.Int("levels", 12, "ORAM tree levels")
	seed := fs.Uint64("seed", 1, "random seed")
	keyHex := fs.String("key", devKey, "16-byte AES key, hex (demo default; empty = pattern-only, no Read/Write)")
	xor := fs.Bool("xor", false, "enable the XOR online fast path: OpXRead answers carry one combined block instead of the full path (requires -key)")
	shards := fs.Int("shards", 1, "independent ORAM trees; block b is served by shard b mod P (leaks the low log2(P) address bits to a per-shard observer)")
	queue := fs.Int("queue", 256, "request queue capacity (admission control), per shard")
	batch := fs.Int("batch", 16, "max requests coalesced per scheduler wakeup (1 = off)")
	maxconns := fs.Int("maxconns", 128, "max concurrent connections (0 = unlimited)")
	idle := fs.Duration("idle", 2*time.Minute, "per-connection idle read deadline (0 = none)")
	writeTO := fs.Duration("write-timeout", 10*time.Second, "per-response write deadline (0 = none)")
	reqTO := fs.Duration("req-timeout", 10*time.Second, "per-request queue+service budget (0 = none)")
	drain := fs.Duration("drain", 10*time.Second, "graceful-shutdown budget for in-flight connections")
	dataDir := fs.String("data-dir", "", "durable data directory (snapshot + WAL); empty = in-memory only")
	snapEvery := fs.Int("snapshot-every", 1024, "with -data-dir: writes between snapshot rotations")
	snapInterval := fs.Duration("snapshot-interval", 0, "with -data-dir: also rotate after this much wall time (0 = off)")
	syncEvery := fs.Int("sync-every", 1, "with -data-dir: fsync the WAL every N writes (1 = zero acknowledged loss)")
	groupCommit := fs.Bool("group-commit", false, "with -data-dir: one WAL fsync per scheduler batch instead of per write (acks stay durable)")
	deltaSnaps := fs.Bool("delta-snapshots", false, "with -data-dir: incremental checkpoints — rotations capture only state touched since the last cut and publish in the background, with a full base every -base-every rotations")
	baseEvery := fs.Int("base-every", 8, "with -delta-snapshots: delta rotations between full base images")
	compactEvery := fs.Int("compact-every", 0, "with -data-dir: rewrite the live WAL segment after N appends, shrinking superseded writes to id stubs (0 = off)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var key []byte
	if *keyHex != "" {
		k, err := hex.DecodeString(*keyHex)
		if err != nil {
			return fmt.Errorf("bad -key: %w", err)
		}
		key = k
	}
	if *xor && key == nil {
		return fmt.Errorf("-xor requires -key (the XOR fast path serves encrypted content)")
	}
	if *shards < 1 || *shards > 1<<16-1 {
		return fmt.Errorf("-shards %d out of range [1, %d]", *shards, 1<<16-1)
	}

	// One engine per shard; each shard draws from its own seed (shard 0
	// keeps the base seed, so -shards 1 is RNG-identical to the unsharded
	// daemon) and, when durable, owns its own snapshot+WAL directory.
	engines := make([]server.Engine, *shards)
	dengs := make([]*durable.Engine, *shards)
	for i := range engines {
		oramOpt := aboram.Options{
			Scheme:        core.Scheme(*scheme),
			Levels:        *levels,
			Seed:          server.ShardSeed(*seed, i),
			EncryptionKey: key,
			XORRead:       *xor,
		}
		if *dataDir == "" {
			o, err := aboram.New(oramOpt)
			if err != nil {
				return err
			}
			engines[i] = o
			continue
		}
		dir := *dataDir
		if *shards > 1 {
			dir = filepath.Join(*dataDir, fmt.Sprintf("shard-%d", i))
		}
		deng, err := durable.Open(durable.Options{
			Dir:              dir,
			ORAM:             oramOpt,
			SnapshotEvery:    *snapEvery,
			SnapshotInterval: *snapInterval,
			// Stagger the shards' rotation schedules deterministically: shard
			// i's first checkpoint lands i/P of a period early, so a fleet
			// opened together never pauses (or publishes) in lockstep.
			SnapshotPhase:  (*snapEvery * i) / *shards,
			DeltaSnapshots: *deltaSnaps,
			BaseEvery:      *baseEvery,
			CompactEvery:   *compactEvery,
			// Checkpoint work rides batch boundaries (the scheduler calls
			// MaybeCheckpoint), so a delta's consistent cut never lands
			// between a write and its acknowledgment.
			DeferCheckpoints: true,
			SyncEvery:        *syncEvery,
			GroupCommit:      *groupCommit,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(out, "aboramd: "+format+"\n", args...)
			},
		})
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		rec := deng.Recovery()
		fmt.Fprintf(out, "aboramd: recovered %s: base epoch %d, %d WAL records replayed (%d segments), %d dedup ids",
			dir, rec.BaseEpoch, rec.RecordsReplayed, rec.SegmentsReplayed, rec.IDsRecovered)
		if rec.DeltasApplied > 0 {
			fmt.Fprintf(out, ", %d deltas applied", rec.DeltasApplied)
		}
		if rec.TornTail {
			fmt.Fprint(out, ", torn tail truncated")
		}
		if rec.SnapshotsSkipped > 0 {
			fmt.Fprintf(out, ", %d unreadable snapshots skipped", rec.SnapshotsSkipped)
		}
		if rec.DeltasSkipped > 0 {
			fmt.Fprintf(out, ", %d unreadable deltas skipped", rec.DeltasSkipped)
		}
		fmt.Fprintln(out)
		engines[i] = deng
		dengs[i] = deng
	}

	srv, err := server.NewSharded(engines, server.Config{Queue: *queue, Batch: *batch})
	if err != nil {
		return err
	}
	tsrv := server.NewTCP(srv, server.TCPConfig{
		MaxConns:       *maxconns,
		IdleTimeout:    *idle,
		WriteTimeout:   *writeTO,
		RequestTimeout: *reqTO,
	})
	if *dataDir != "" {
		// Seed the retry-dedup window with the ids recovered from every
		// shard's snapshot header and WAL: a client write retried across
		// this restart is answered from the window, not applied twice.
		// (The window skips ids it already holds, so the per-shard seeding
		// order is immaterial.)
		for _, deng := range dengs {
			tsrv.SeedDedup(deng.RecentWriteIDs())
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		srv.Close()
		return err
	}
	if onReady != nil {
		onReady(ln.Addr())
	}
	fmt.Fprintf(out, "aboramd: serving %s (levels=%d, %d blocks of %d B, encrypted=%v, xor=%v, shards=%d) on %s\n",
		*scheme, *levels, srv.NumBlocks(), srv.BlockSize(), srv.Encrypted(), *xor, srv.Shards(), ln.Addr())
	fmt.Fprintf(out, "aboramd: queue=%d batch=%d maxconns=%d shards=%d\n", *queue, *batch, *maxconns, *shards)

	served := make(chan error, 1)
	go func() { served <- tsrv.Serve(ln) }()

	// Serve until a terminating signal (or the listener fails). SIGUSR1
	// dumps the live counters and keeps serving.
wait:
	for {
		select {
		case err := <-served:
			srv.Close()
			closeShards(out, dengs)
			return err
		case sig := <-stop:
			if sig == syscall.SIGUSR1 {
				dumpCounters(out, srv, tsrv, dengs)
				continue
			}
			fmt.Fprintf(out, "aboramd: %v, draining (budget %v)\n", sig, *drain)
			break wait
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := tsrv.Shutdown(ctx); err != nil {
		fmt.Fprintf(out, "aboramd: forced close of lingering connections: %v\n", err)
	}
	<-served    // Serve has returned ErrServerClosed
	srv.Close() // serve everything already admitted on every shard, then stop
	closeShards(out, dengs)
	if err := dumpCounters(out, srv, tsrv, dengs); err != nil {
		return err
	}
	fmt.Fprintln(out, "aboramd: bye")
	return nil
}

// closeShards closes every durable engine. The schedulers are stopped by
// now, so the engines are quiescent: each syncs and closes its WAL;
// recovery replays them on the next start.
func closeShards(out io.Writer, dengs []*durable.Engine) {
	for i, deng := range dengs {
		if deng == nil {
			continue
		}
		if err := deng.Close(); err != nil {
			fmt.Fprintf(out, "aboramd: closing shard %d data dir: %v\n", i, err)
		}
	}
}

// dumpCounters prints the durability, scheduler, and front-end counters.
// SIGUSR1 triggers it on a live daemon; the shutdown path reuses it for
// the final report. With more than one shard, durability lines and
// scheduler tables are printed per shard plus one aggregate table.
func dumpCounters(out io.Writer, srv *server.Sharded, tsrv *server.TCPServer, dengs []*durable.Engine) error {
	multi := srv.Shards() > 1
	for i, deng := range dengs {
		if deng == nil {
			continue
		}
		label := "durability"
		if multi {
			label = fmt.Sprintf("shard %d durability", i)
		}
		ds := deng.Stats()
		fmt.Fprintf(out, "aboramd: %s: %d writes logged, %d fsyncs (%d batched), %d snapshots + %d deltas (epoch %d), %d compactions, %.1fms checkpoint pause, last checkpoint %d B, %d prune failures\n",
			label, ds.Writes, ds.Syncs, ds.BatchedSyncs, ds.Snapshots, ds.DeltasWritten, deng.Epoch(),
			ds.CompactionRuns, float64(ds.SnapshotPauseNanos)/1e6, ds.LastSnapshotBytes, ds.PruneFailures)
	}
	title := "aboramd scheduler counters"
	if multi {
		title = fmt.Sprintf("aboramd scheduler counters (aggregate over %d shards)", srv.Shards())
	}
	if err := srv.Metrics().Table(title).WriteText(out); err != nil {
		return err
	}
	if multi {
		for i, m := range srv.ShardMetrics() {
			if err := m.Table(fmt.Sprintf("aboramd scheduler counters, shard %d", i)).WriteText(out); err != nil {
				return err
			}
		}
	}
	tm := tsrv.Metrics()
	fmt.Fprintf(out, "aboramd: %d connections served, %d refused, %d active; %d retries deduped, %d requests shed\n",
		tm.Accepted, tm.Refused, tm.Active, tm.Deduped, tm.Shed)
	return nil
}
