package main

import (
	"bytes"
	"net"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/server"
)

// startDaemon runs the daemon on an ephemeral port and returns its address
// plus a shutdown func that sends SIGTERM and waits for a clean exit.
func startDaemon(t *testing.T, extraArgs ...string) (addr string, out *syncBuffer, shutdown func()) {
	addr, out, _, shutdown = startDaemonSignals(t, extraArgs...)
	return addr, out, shutdown
}

// startDaemonSignals is startDaemon plus the signal channel, for tests
// that poke the daemon with non-terminating signals (SIGUSR1).
func startDaemonSignals(t *testing.T, extraArgs ...string) (addr string, out *syncBuffer, sig chan<- os.Signal, shutdown func()) {
	t.Helper()
	stop := make(chan os.Signal, 1)
	ready := make(chan net.Addr, 1)
	buf := &syncBuffer{}

	args := append([]string{"-addr", "127.0.0.1:0", "-levels", "8", "-drain", "5s"}, extraArgs...)
	done := make(chan error, 1)
	go func() {
		done <- run(args, buf, stop, func(a net.Addr) { ready <- a })
	}()
	select {
	case a := <-ready:
		addr = a.String()
	case err := <-done:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}
	shutdown = func() {
		stop <- syscall.SIGTERM
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("daemon exit: %v", err)
			}
		case <-time.After(15 * time.Second):
			t.Error("daemon did not exit after SIGTERM")
		}
	}
	return addr, buf, stop, shutdown
}

// syncBuffer is a bytes.Buffer both the daemon goroutine (Write) and the
// test (String) may touch.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *syncBuffer) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *syncBuffer) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// TestDaemonServesAndDrains boots the daemon, does real work over TCP,
// then SIGTERMs it and checks the graceful-drain output.
func TestDaemonServesAndDrains(t *testing.T) {
	addr, out, shutdown := startDaemon(t)

	c, err := server.Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	info, err := c.Info()
	if err != nil {
		t.Fatal(err)
	}
	if !info.Encrypted {
		t.Fatal("default daemon should run with the demo key")
	}
	want := make([]byte, info.BlockSize)
	for i := range want {
		want[i] = 0xA5
	}
	if err := c.Write(3, want); err != nil {
		t.Fatal(err)
	}
	got, err := c.Read(3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("daemon returned wrong block contents")
	}
	c.Close()

	shutdown()
	s := out.String()
	for _, wantLine := range []string{"aboramd: serving", "draining", "scheduler counters", "bye"} {
		if !strings.Contains(s, wantLine) {
			t.Errorf("daemon output missing %q:\n%s", wantLine, s)
		}
	}
}

// TestDaemonPatternOnly runs with -key "" and checks reads fail while
// accesses work, end to end.
func TestDaemonPatternOnly(t *testing.T) {
	addr, _, shutdown := startDaemon(t, "-key", "")
	defer shutdown()

	c, err := server.Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	info, err := c.Info()
	if err != nil {
		t.Fatal(err)
	}
	if info.Encrypted {
		t.Fatal("-key \"\" should disable encryption")
	}
	if err := c.Access(1); err != nil {
		t.Fatalf("access: %v", err)
	}
	if _, err := c.Read(1); err == nil {
		t.Fatal("read should fail on a pattern-only daemon")
	}
}

// TestDaemonDurableRestart writes through one daemon incarnation with
// -data-dir, SIGTERMs it, boots a second one on the same directory, and
// checks the content survived the restart.
func TestDaemonDurableRestart(t *testing.T) {
	dir := t.TempDir()
	addr, out, shutdown := startDaemon(t, "-data-dir", dir, "-snapshot-every", "4")

	c, err := server.Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	info, err := c.Info()
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, info.BlockSize)
	for i := range want {
		want[i] = byte(i * 7)
	}
	// Enough writes to cross a snapshot rotation and leave a WAL suffix.
	for blk := int64(0); blk < 6; blk++ {
		if err := c.Write(blk, want); err != nil {
			t.Fatalf("write %d: %v", blk, err)
		}
	}
	c.Close()
	shutdown()
	if s := out.String(); !strings.Contains(s, "durability:") {
		t.Fatalf("first incarnation printed no durability counters:\n%s", s)
	}

	addr2, out2, shutdown2 := startDaemon(t, "-data-dir", dir, "-snapshot-every", "4")
	defer shutdown2()
	if s := out2.String(); !strings.Contains(s, "recovered "+dir) {
		t.Fatalf("second incarnation printed no recovery line:\n%s", s)
	}
	c2, err := server.Dial(addr2, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	for blk := int64(0); blk < 6; blk++ {
		got, err := c2.Read(blk)
		if err != nil {
			t.Fatalf("read %d after restart: %v", blk, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("block %d lost across restart", blk)
		}
	}
}

// TestDaemonBadFlags checks that invalid configuration fails fast instead
// of starting a broken daemon.
func TestDaemonBadFlags(t *testing.T) {
	for _, tc := range [][]string{
		{"-key", "nothex"},
		{"-key", "abcd"}, // valid hex, wrong length
		{"-scheme", "BOGUS"},
		{"-levels", "1"},
	} {
		var buf bytes.Buffer
		stop := make(chan os.Signal)
		if err := run(tc, &buf, stop, nil); err == nil {
			t.Errorf("run(%v) succeeded, want error", tc)
		}
	}
}

// TestDaemonSIGUSR1DumpsCounters pokes a running durable daemon with
// SIGUSR1 and checks the live counter dump appears — durability,
// scheduler, and front-end lines — while service continues unharmed.
func TestDaemonSIGUSR1DumpsCounters(t *testing.T) {
	dir := t.TempDir()
	addr, out, sig, shutdown := startDaemonSignals(t, "-data-dir", dir, "-group-commit")
	defer shutdown()

	c, err := server.Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	info, err := c.Info()
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, info.BlockSize)
	for blk := int64(0); blk < 4; blk++ {
		if err := c.Write(blk, data); err != nil {
			t.Fatalf("write %d: %v", blk, err)
		}
	}

	sig <- syscall.SIGUSR1
	deadline := time.Now().Add(5 * time.Second)
	for {
		s := out.String()
		if strings.Contains(s, "durability:") && strings.Contains(s, "scheduler counters") &&
			strings.Contains(s, "connections served") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("SIGUSR1 dump never appeared:\n%s", s)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if strings.Contains(out.String(), "draining") {
		t.Fatal("SIGUSR1 started a drain; it must only dump counters")
	}
	// Service continues after the dump.
	if err := c.Access(1); err != nil {
		t.Fatalf("access after SIGUSR1: %v", err)
	}
}

// TestDaemonGroupCommitRestart runs a -group-commit daemon, writes
// through it, and checks both the amortized-fsync accounting and that
// every acknowledged write survives a restart.
func TestDaemonGroupCommitRestart(t *testing.T) {
	dir := t.TempDir()
	addr, out, shutdown := startDaemon(t, "-data-dir", dir, "-group-commit")

	c, err := server.Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	info, err := c.Info()
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, info.BlockSize)
	for i := range want {
		want[i] = byte(i*3 + 1)
	}
	for blk := int64(0); blk < 8; blk++ {
		if err := c.Write(blk, want); err != nil {
			t.Fatalf("write %d: %v", blk, err)
		}
	}
	c.Close()
	shutdown()
	if s := out.String(); !strings.Contains(s, "batched") {
		t.Fatalf("no batched-fsync accounting in shutdown dump:\n%s", s)
	}

	addr2, _, shutdown2 := startDaemon(t, "-data-dir", dir, "-group-commit")
	defer shutdown2()
	c2, err := server.Dial(addr2, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	for blk := int64(0); blk < 8; blk++ {
		got, err := c2.Read(blk)
		if err != nil {
			t.Fatalf("read %d after restart: %v", blk, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("block %d lost across group-commit restart", blk)
		}
	}
}

// TestDaemonShardedDurableRestart boots a -shards 4 durable daemon,
// writes across the whole global address space, restarts it, and checks
// (a) the client sees the sharded geometry, (b) every shard recovered
// from its own subdirectory, and (c) all content survived — including
// the per-shard + aggregate counter dump on shutdown.
func TestDaemonShardedDurableRestart(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-shards", "4", "-data-dir", dir, "-snapshot-every", "4", "-group-commit"}
	addr, out, shutdown := startDaemon(t, args...)

	c, err := server.Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	info, err := c.Info()
	if err != nil {
		t.Fatal(err)
	}
	if info.Shards != 4 {
		t.Fatalf("info shards %d, want 4", info.Shards)
	}
	// One write per shard residue class, plus more to cross snapshots.
	want := func(blk int64) []byte {
		d := make([]byte, info.BlockSize)
		for i := range d {
			d[i] = byte(blk*11) ^ byte(i*5)
		}
		return d
	}
	for blk := int64(0); blk < 12; blk++ {
		if err := c.Write(blk, want(blk)); err != nil {
			t.Fatalf("write %d: %v", blk, err)
		}
	}
	c.Close()
	shutdown()
	s := out.String()
	for _, wantLine := range []string{
		"shards=4",
		"shard 0 durability", "shard 3 durability",
		"scheduler counters (aggregate over 4 shards)",
		"scheduler counters, shard 2",
	} {
		if !strings.Contains(s, wantLine) {
			t.Errorf("sharded daemon output missing %q:\n%s", wantLine, s)
		}
	}

	addr2, out2, shutdown2 := startDaemon(t, args...)
	defer shutdown2()
	s2 := out2.String()
	for i := 0; i < 4; i++ {
		wantLine := "recovered " + dir + "/shard-" + string(rune('0'+i))
		if !strings.Contains(s2, wantLine) {
			t.Errorf("second incarnation missing %q:\n%s", wantLine, s2)
		}
	}
	c2, err := server.Dial(addr2, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	for blk := int64(0); blk < 12; blk++ {
		got, err := c2.Read(blk)
		if err != nil {
			t.Fatalf("read %d after restart: %v", blk, err)
		}
		if !bytes.Equal(got, want(blk)) {
			t.Fatalf("block %d lost across sharded restart", blk)
		}
	}
}

// TestDaemonShardsFlagValidation checks out-of-range -shards fails fast.
func TestDaemonShardsFlagValidation(t *testing.T) {
	for _, tc := range [][]string{
		{"-shards", "0"},
		{"-shards", "-2"},
		{"-shards", "65536"},
	} {
		var buf bytes.Buffer
		stop := make(chan os.Signal)
		if err := run(tc, &buf, stop, nil); err == nil {
			t.Errorf("run(%v) succeeded, want error", tc)
		}
	}
}

// TestDaemonReplicationFailover runs the full two-daemon failover story:
// a durable semi-sync primary, a -replica-of standby mirroring it over
// the wire, writes acknowledged only after the standby's fsync, then
// primary shutdown, OpPromote on the standby, and every write read back
// from the promoted fleet. The client dials the standby's address first,
// so not-primary rotation is exercised on the way in.
func TestDaemonReplicationFailover(t *testing.T) {
	pdir, rdir := t.TempDir(), t.TempDir()
	paddr, pout, psig, pshutdown := startDaemonSignals(t,
		"-data-dir", pdir, "-shards", "2", "-ack", "replica", "-group-commit", "-drain", "1s")
	raddr, rout, rshutdown := startDaemon(t,
		"-data-dir", rdir, "-shards", "2", "-replica-of", paddr, "-drain", "1s")

	// Standby first in the address list: every op starts with a
	// not-primary rotation.
	c, err := server.DialConfig(raddr+","+paddr, server.ClientConfig{Timeout: 5 * time.Second, MaxAttempts: 6})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	info, err := c.Info()
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[int64][]byte)
	for b := int64(0); b < 10; b++ {
		d := make([]byte, info.BlockSize)
		for i := range d {
			d[i] = byte(b) ^ byte(i*3)
		}
		if err := c.Write(b, d); err != nil {
			t.Fatalf("write %d: %v", b, err)
		}
		want[b] = d
	}
	if st := c.Stats(); st.NotPrimary == 0 || st.Failovers == 0 {
		t.Errorf("client never rotated off the standby: %+v", st)
	}

	// Wait until the primary reports the standby attached and fully
	// acknowledged (semi-sync has it there already; the poll guards
	// scheduling noise).
	deadline := time.Now().Add(10 * time.Second)
	for {
		pc, err := server.Dial(paddr, 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		pi, err := pc.Info()
		pc.Close()
		if err != nil {
			t.Fatal(err)
		}
		if r := pi.Replication; r != nil && r.Attached && r.AckedSeq == r.ShippedSeq && r.ShippedSeq > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replication never drained: %+v", pi.Replication)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// SIGUSR1 on the primary must include the replication columns.
	psig <- syscall.SIGUSR1
	usr1Deadline := time.Now().Add(5 * time.Second)
	for !strings.Contains(pout.String(), "replication: attached=true") {
		if time.Now().After(usr1Deadline) {
			t.Fatalf("SIGUSR1 dump lacks replication lines:\n%s", pout.String())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Fail the primary over: stop it, promote the standby, read back.
	pshutdown()
	rc, err := server.Dial(raddr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := rc.Promote()
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	rc.Close()
	if pi.Term == 0 || pi.Shards != 2 {
		t.Fatalf("promote info %+v, want term >= 1 and 2 shards", pi)
	}
	for b, d := range want {
		got, err := c.Read(b)
		if err != nil {
			t.Fatalf("read %d after failover: %v", b, err)
		}
		if !bytes.Equal(got, d) {
			t.Fatalf("block %d diverged after failover", b)
		}
	}

	rshutdown()
	s := rout.String()
	for _, wantLine := range []string{"standby mirroring", "promoted to primary at term 1"} {
		if !strings.Contains(s, wantLine) {
			t.Errorf("standby output missing %q:\n%s", wantLine, s)
		}
	}
	if !strings.Contains(pout.String(), "ack policy replica") {
		t.Errorf("primary banner missing semi-sync ack policy:\n%s", pout.String())
	}
}
