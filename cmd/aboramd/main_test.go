package main

import (
	"bytes"
	"net"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/server"
)

// startDaemon runs the daemon on an ephemeral port and returns its address
// plus a shutdown func that sends SIGTERM and waits for a clean exit.
func startDaemon(t *testing.T, extraArgs ...string) (addr string, out *bytes.Buffer, shutdown func()) {
	t.Helper()
	stop := make(chan os.Signal, 1)
	ready := make(chan net.Addr, 1)
	var buf bytes.Buffer
	var mu sync.Mutex // run writes buf from its goroutine; readers take the lock
	w := lockedWriter{mu: &mu, buf: &buf}

	args := append([]string{"-addr", "127.0.0.1:0", "-levels", "8", "-drain", "5s"}, extraArgs...)
	done := make(chan error, 1)
	go func() {
		done <- run(args, w, stop, func(a net.Addr) { ready <- a })
	}()
	select {
	case a := <-ready:
		addr = a.String()
	case err := <-done:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}
	shutdown = func() {
		stop <- syscall.SIGTERM
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("daemon exit: %v", err)
			}
		case <-time.After(15 * time.Second):
			t.Error("daemon did not exit after SIGTERM")
		}
	}
	return addr, &buf, shutdown
}

type lockedWriter struct {
	mu  *sync.Mutex
	buf *bytes.Buffer
}

func (w lockedWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

// TestDaemonServesAndDrains boots the daemon, does real work over TCP,
// then SIGTERMs it and checks the graceful-drain output.
func TestDaemonServesAndDrains(t *testing.T) {
	addr, out, shutdown := startDaemon(t)

	c, err := server.Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	info, err := c.Info()
	if err != nil {
		t.Fatal(err)
	}
	if !info.Encrypted {
		t.Fatal("default daemon should run with the demo key")
	}
	want := make([]byte, info.BlockSize)
	for i := range want {
		want[i] = 0xA5
	}
	if err := c.Write(3, want); err != nil {
		t.Fatal(err)
	}
	got, err := c.Read(3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("daemon returned wrong block contents")
	}
	c.Close()

	shutdown()
	s := out.String()
	for _, wantLine := range []string{"aboramd: serving", "draining", "scheduler counters", "bye"} {
		if !strings.Contains(s, wantLine) {
			t.Errorf("daemon output missing %q:\n%s", wantLine, s)
		}
	}
}

// TestDaemonPatternOnly runs with -key "" and checks reads fail while
// accesses work, end to end.
func TestDaemonPatternOnly(t *testing.T) {
	addr, _, shutdown := startDaemon(t, "-key", "")
	defer shutdown()

	c, err := server.Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	info, err := c.Info()
	if err != nil {
		t.Fatal(err)
	}
	if info.Encrypted {
		t.Fatal("-key \"\" should disable encryption")
	}
	if err := c.Access(1); err != nil {
		t.Fatalf("access: %v", err)
	}
	if _, err := c.Read(1); err == nil {
		t.Fatal("read should fail on a pattern-only daemon")
	}
}

// TestDaemonDurableRestart writes through one daemon incarnation with
// -data-dir, SIGTERMs it, boots a second one on the same directory, and
// checks the content survived the restart.
func TestDaemonDurableRestart(t *testing.T) {
	dir := t.TempDir()
	addr, out, shutdown := startDaemon(t, "-data-dir", dir, "-snapshot-every", "4")

	c, err := server.Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	info, err := c.Info()
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, info.BlockSize)
	for i := range want {
		want[i] = byte(i * 7)
	}
	// Enough writes to cross a snapshot rotation and leave a WAL suffix.
	for blk := int64(0); blk < 6; blk++ {
		if err := c.Write(blk, want); err != nil {
			t.Fatalf("write %d: %v", blk, err)
		}
	}
	c.Close()
	shutdown()
	if s := out.String(); !strings.Contains(s, "durability:") {
		t.Fatalf("first incarnation printed no durability counters:\n%s", s)
	}

	addr2, out2, shutdown2 := startDaemon(t, "-data-dir", dir, "-snapshot-every", "4")
	defer shutdown2()
	if s := out2.String(); !strings.Contains(s, "recovered "+dir) {
		t.Fatalf("second incarnation printed no recovery line:\n%s", s)
	}
	c2, err := server.Dial(addr2, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	for blk := int64(0); blk < 6; blk++ {
		got, err := c2.Read(blk)
		if err != nil {
			t.Fatalf("read %d after restart: %v", blk, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("block %d lost across restart", blk)
		}
	}
}

// TestDaemonBadFlags checks that invalid configuration fails fast instead
// of starting a broken daemon.
func TestDaemonBadFlags(t *testing.T) {
	for _, tc := range [][]string{
		{"-key", "nothex"},
		{"-key", "abcd"}, // valid hex, wrong length
		{"-scheme", "BOGUS"},
		{"-levels", "1"},
	} {
		var buf bytes.Buffer
		stop := make(chan os.Signal)
		if err := run(tc, &buf, stop, nil); err == nil {
			t.Errorf("run(%v) succeeded, want error", tc)
		}
	}
}
