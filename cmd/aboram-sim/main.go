// Command aboram-sim runs a single ORAM configuration against a single
// benchmark through the full timing stack and prints a result summary —
// the one-off counterpart to cmd/abench's batch experiments.
//
// Usage:
//
//	aboram-sim -scheme AB -bench mcf -levels 14 -accesses 50000
//	aboram-sim -scheme Baseline -bench lbm -trace /tmp/lbm.trace
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/memop"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "aboram-sim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("aboram-sim", flag.ContinueOnError)
	scheme := fs.String("scheme", "AB", "scheme: Baseline | IR | DR | NS | AB")
	bench := fs.String("bench", "mcf", "benchmark name (see cmd/abench -exp table4)")
	levels := fs.Int("levels", 14, "ORAM tree levels")
	warmup := fs.Int("warmup", 5000, "warm-up accesses")
	accesses := fs.Int("accesses", 20000, "measured accesses")
	seed := fs.Uint64("seed", 1, "random seed")
	tracePath := fs.String("trace", "", "replay a recorded trace file instead of generating one")
	if err := fs.Parse(args); err != nil {
		return err
	}

	b, err := trace.Find(*bench)
	if err != nil {
		return err
	}
	opt := core.DefaultOptions(*levels, *seed)
	o, dq, err := core.New(core.Scheme(*scheme), opt)
	if err != nil {
		return err
	}
	s, err := sim.New(o, dram.DDR3_1600(), sim.DefaultCPU())
	if err != nil {
		return err
	}

	var step func() (trace.Request, error)
	if *tracePath != "" {
		f, err := os.Open(*tracePath)
		if err != nil {
			return err
		}
		defer f.Close()
		r := trace.NewReader(f)
		step = r.Read
	} else {
		gen, err := trace.NewGenerator(b, *seed)
		if err != nil {
			return err
		}
		step = func() (trace.Request, error) { return gen.Next(), nil }
	}

	runN := func(n int) error {
		for i := 0; i < n; i++ {
			req, err := step()
			if err == io.EOF {
				return fmt.Errorf("trace exhausted after %d requests", i)
			}
			if err != nil {
				return err
			}
			if err := s.Step(req); err != nil {
				return err
			}
		}
		return nil
	}

	if err := runN(*warmup); err != nil {
		return err
	}
	s.StartMeasurement()
	if err := runN(*accesses); err != nil {
		return err
	}
	res := s.Finish()

	fmt.Fprintf(out, "scheme            %s on %s (%d levels, seed %d)\n", *scheme, b.Name, *levels, *seed)
	fmt.Fprintf(out, "tree space        %.1f MiB (utilization %.1f%%)\n",
		float64(res.SpaceB)/(1<<20), o.Utilization()*100)
	fmt.Fprintf(out, "accesses          %d measured (%d warm-up)\n", res.Accesses, *warmup)
	fmt.Fprintf(out, "cycles/access     %.0f\n", res.CyclesPerAccess())
	fmt.Fprintf(out, "bandwidth         %.2f bytes/cycle\n", res.BandwidthBytesPerCycle())
	fmt.Fprintf(out, "row-buffer hits   %.1f%%\n", res.Mem.RowHitRate()*100)
	fmt.Fprintf(out, "stash peak        %d (overflows %d)\n", res.StashPeak, res.Overflows)
	st := res.ORAM
	fmt.Fprintf(out, "ops               evict=%d earlyReshuffle=%d dummy=%d green=%d\n",
		st.EvictPaths, st.EarlyReshuffles, st.DummyAccesses, st.GreenBlocks)
	if st.ExtendAttempts > 0 {
		fmt.Fprintf(out, "S extension       %.1f%% of %d attempts (stale claims %d)\n",
			100*float64(st.ExtendGranted)/float64(st.ExtendAttempts), st.ExtendAttempts, st.StaleClaims)
	}
	if dq != nil {
		ds := dq.Stats()
		fmt.Fprintf(out, "deadq             accepted=%d claims=%d releases=%d\n", ds.Accepted, ds.Claims, ds.Releases)
	}
	var total uint64
	for _, v := range res.Breakdown {
		total += v
	}
	if total > 0 {
		fmt.Fprintf(out, "time breakdown    ")
		for _, k := range memop.Kinds() {
			if v := res.Breakdown[k]; v > 0 {
				fmt.Fprintf(out, "%s=%.1f%% ", k, 100*float64(v)/float64(total))
			}
		}
		fmt.Fprintln(out)
	}
	return nil
}
