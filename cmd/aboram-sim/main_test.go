package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/trace"
)

func TestUnknownScheme(t *testing.T) {
	if err := run([]string{"-scheme", "bogus", "-levels", "10", "-warmup", "10", "-accesses", "10"}, &strings.Builder{}); err == nil {
		t.Fatal("expected error")
	}
}

func TestUnknownBench(t *testing.T) {
	if err := run([]string{"-bench", "bogus"}, &strings.Builder{}); err == nil {
		t.Fatal("expected error")
	}
}

func TestSmallRunSummary(t *testing.T) {
	var buf strings.Builder
	err := run([]string{"-scheme", "AB", "-bench", "x264", "-levels", "10", "-warmup", "300", "-accesses", "800"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"cycles/access", "stash peak", "S extension", "time breakdown"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestTraceReplayPath(t *testing.T) {
	// Generate a trace file, then replay it.
	dir := t.TempDir()
	path := filepath.Join(dir, "x.trace")
	b, _ := trace.Find("gcc")
	gen, _ := trace.NewGenerator(b, 2)
	f, err := createTraceFile(path, gen, 1500)
	if err != nil {
		t.Fatal(err)
	}
	_ = f
	var buf strings.Builder
	if err := run([]string{"-scheme", "Baseline", "-levels", "10", "-trace", path, "-warmup", "200", "-accesses", "800"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "cycles/access") {
		t.Fatal("summary missing")
	}
	// A trace shorter than warmup+accesses must error cleanly.
	if err := run([]string{"-scheme", "Baseline", "-levels", "10", "-trace", path, "-warmup", "1000", "-accesses", "5000"}, &strings.Builder{}); err == nil {
		t.Fatal("exhausted trace accepted")
	}
}

// createTraceFile writes n requests from gen to path.
func createTraceFile(path string, gen *trace.Generator, n int) (string, error) {
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	w := trace.NewWriter(f)
	for i := 0; i < n; i++ {
		if err := w.Write(gen.Next()); err != nil {
			return "", err
		}
	}
	return path, w.Flush()
}
