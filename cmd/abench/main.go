// Command abench regenerates the tables and figures of the AB-ORAM paper.
//
// Usage:
//
//	abench -exp fig8                 # one experiment, quick preset
//	abench -exp all -preset full     # everything, flagship preset
//	abench -list                     # enumerate experiment IDs
//	abench -exp fig8 -csv out/       # also write CSV series
//	abench -exp all -json run.json   # tables + run metadata as JSON
//	abench -exp all -parallel 1      # sequential (output is byte-identical)
//
// Each experiment prints one or more aligned text tables annotated with
// the paper's reported values for comparison. All experiments share one
// orchestrator (internal/sim.Exec): a bounded worker pool with a keyed
// run-cache, so `-exp all` computes each (config, benchmark, seed) job
// once and reuses it across experiments. Tables are byte-identical at any
// -parallel setting.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/report"
	"repro/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "abench:", err)
		os.Exit(1)
	}
}

// jsonExperiment is one experiment's entry in the -json document.
type jsonExperiment struct {
	ID          string            `json:"id"`
	WallSeconds float64           `json:"wallSeconds"`
	Tables      []json.RawMessage `json:"tables"`
}

// jsonRun is the top-level -json document: every table plus the run
// metadata needed to reproduce and audit it.
type jsonRun struct {
	Preset      string           `json:"preset"`
	Levels      int              `json:"levels"`
	Treetop     int              `json:"treetop"`
	Warmup      int              `json:"warmup"`
	Measure     int              `json:"measure"`
	Seed        uint64           `json:"seed"`
	Parallel    int              `json:"parallel"`
	Benchmarks  []string         `json:"benchmarks"`
	Experiments []jsonExperiment `json:"experiments"`
	Cache       sim.ExecStats    `json:"cache"`
	Jobs        []sim.JobMetric  `json:"jobs"`
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("abench", flag.ContinueOnError)
	exp := fs.String("exp", "", "experiment ID (e.g. fig8) or 'all'")
	preset := fs.String("preset", "quick", "parameter preset: quick | full")
	list := fs.Bool("list", false, "list experiment IDs and exit")
	levels := fs.Int("levels", 0, "override ORAM tree levels")
	warmup := fs.Int("warmup", 0, "override warm-up accesses")
	measure := fs.Int("measure", 0, "override measured accesses")
	seed := fs.Uint64("seed", 0, "override experiment seed")
	parallel := fs.Int("parallel", 0, "max concurrent simulation jobs (0 = GOMAXPROCS)")
	csvDir := fs.String("csv", "", "directory to write CSV copies of every table")
	jsonPath := fs.String("json", "", `write tables + run metadata as JSON to this file ("-" = stdout, suppressing text output)`)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Flags set explicitly on the command line, so a deliberate zero (e.g.
	// -seed 0) is honored instead of being mistaken for "unset".
	explicit := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	if *list {
		for _, id := range sim.ExperimentIDs() {
			fmt.Fprintln(stdout, id)
		}
		return nil
	}
	if *exp == "" {
		fs.Usage()
		return fmt.Errorf("missing -exp (or -list)")
	}

	var p sim.Params
	switch *preset {
	case "quick":
		p = sim.Quick()
	case "full":
		p = sim.Full()
	default:
		return fmt.Errorf("unknown preset %q", *preset)
	}
	if *levels > 0 {
		p.Levels = *levels
		p.Treetop = *levels * 10 / 24
	}
	if *warmup > 0 {
		p.Warmup = *warmup
	}
	if *measure > 0 {
		p.Measure = *measure
	}
	if explicit["seed"] {
		p.Seed = *seed
	}
	p.Parallel = *parallel
	// One orchestrator for the whole invocation: `-exp all` reuses cached
	// runs across experiments.
	p.Exec = sim.NewExec(*parallel)

	textOut := stdout
	jsonOut := io.Writer(nil)
	switch {
	case *jsonPath == "-":
		jsonOut = stdout
		textOut = io.Discard
	case *jsonPath != "":
		// Open upfront so a bad path fails before hours of simulation,
		// not after.
		f, err := os.Create(*jsonPath)
		if err != nil {
			return err
		}
		defer f.Close()
		jsonOut = f
	}

	ids := []string{*exp}
	if *exp == "all" {
		// Wall-clock experiments (serve) are machine-dependent, which would
		// break `-exp all`'s byte-identical output contract; run them by name.
		ids = ids[:0]
		for _, id := range sim.ExperimentIDs() {
			if !sim.WallClock(id) {
				ids = append(ids, id)
			}
		}
	}
	reg := sim.Registry()
	doc := jsonRun{
		Preset: *preset, Levels: p.Levels, Treetop: p.Treetop,
		Warmup: p.Warmup, Measure: p.Measure, Seed: p.Seed,
		Parallel: p.Exec.Parallelism(),
	}
	for _, b := range p.Benchmarks {
		doc.Benchmarks = append(doc.Benchmarks, b.Name)
	}
	for _, id := range ids {
		runner, ok := reg[id]
		if !ok {
			return fmt.Errorf("unknown experiment %q (use -list)", id)
		}
		start := time.Now()
		tables, err := runner(p)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		wall := time.Since(start)
		fmt.Fprintf(textOut, "=== %s (%.1fs) ===\n", id, wall.Seconds())
		je := jsonExperiment{ID: id, WallSeconds: wall.Seconds()}
		for ti, t := range tables {
			if err := t.WriteText(textOut); err != nil {
				return err
			}
			fmt.Fprintln(textOut)
			if *csvDir != "" {
				if err := writeCSV(*csvDir, id, ti, t); err != nil {
					return err
				}
			}
			if *jsonPath != "" {
				var buf strings.Builder
				if err := t.WriteJSON(&buf); err != nil {
					return err
				}
				je.Tables = append(je.Tables, json.RawMessage(strings.TrimRight(buf.String(), "\n")))
			}
		}
		doc.Experiments = append(doc.Experiments, je)
	}
	if jsonOut != nil {
		stats := p.Exec.Stats()
		doc.Cache = stats
		doc.Jobs = stats.PerJob
		enc := json.NewEncoder(jsonOut)
		enc.SetIndent("", "  ")
		return enc.Encode(doc)
	}
	return nil
}

func writeCSV(dir, id string, idx int, t *report.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	name := fmt.Sprintf("%s_%d.csv", strings.ReplaceAll(id, "/", "_"), idx)
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	return t.WriteCSV(f)
}
