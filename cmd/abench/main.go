// Command abench regenerates the tables and figures of the AB-ORAM paper.
//
// Usage:
//
//	abench -exp fig8                 # one experiment, quick preset
//	abench -exp all -preset full     # everything, flagship preset
//	abench -list                     # enumerate experiment IDs
//	abench -exp fig8 -csv out/       # also write CSV series
//
// Each experiment prints one or more aligned text tables annotated with
// the paper's reported values for comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/report"
	"repro/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "abench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("abench", flag.ContinueOnError)
	exp := fs.String("exp", "", "experiment ID (e.g. fig8) or 'all'")
	preset := fs.String("preset", "quick", "parameter preset: quick | full")
	list := fs.Bool("list", false, "list experiment IDs and exit")
	levels := fs.Int("levels", 0, "override ORAM tree levels")
	warmup := fs.Int("warmup", 0, "override warm-up accesses")
	measure := fs.Int("measure", 0, "override measured accesses")
	seed := fs.Uint64("seed", 0, "override experiment seed")
	csvDir := fs.String("csv", "", "directory to write CSV copies of every table")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, id := range sim.ExperimentIDs() {
			fmt.Println(id)
		}
		return nil
	}
	if *exp == "" {
		fs.Usage()
		return fmt.Errorf("missing -exp (or -list)")
	}

	var p sim.Params
	switch *preset {
	case "quick":
		p = sim.Quick()
	case "full":
		p = sim.Full()
	default:
		return fmt.Errorf("unknown preset %q", *preset)
	}
	if *levels > 0 {
		p.Levels = *levels
		p.Treetop = *levels * 10 / 24
	}
	if *warmup > 0 {
		p.Warmup = *warmup
	}
	if *measure > 0 {
		p.Measure = *measure
	}
	if *seed != 0 {
		p.Seed = *seed
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = sim.ExperimentIDs()
	}
	reg := sim.Registry()
	for _, id := range ids {
		runner, ok := reg[id]
		if !ok {
			return fmt.Errorf("unknown experiment %q (use -list)", id)
		}
		start := time.Now()
		tables, err := runner(p)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Printf("=== %s (%.1fs) ===\n", id, time.Since(start).Seconds())
		for ti, t := range tables {
			if err := t.WriteText(os.Stdout); err != nil {
				return err
			}
			fmt.Println()
			if *csvDir != "" {
				if err := writeCSV(*csvDir, id, ti, t); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func writeCSV(dir, id string, idx int, t *report.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	name := fmt.Sprintf("%s_%d.csv", strings.ReplaceAll(id, "/", "_"), idx)
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	return t.WriteCSV(f)
}
