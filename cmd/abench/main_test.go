package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "nonsense"}); err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("err = %v", err)
	}
}

func TestMissingExp(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("expected usage error")
	}
}

func TestUnknownPreset(t *testing.T) {
	if err := run([]string{"-exp", "table1", "-preset", "bogus"}); err == nil {
		t.Fatal("expected preset error")
	}
}

func TestListAndStaticExperiment(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
	// table1 and storage are closed-form: cheap smoke coverage of the full
	// command path including CSV output.
	dir := t.TempDir()
	if err := run([]string{"-exp", "table1", "-csv", dir}); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "table1_*.csv"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no CSV written: %v %v", files, err)
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "field,category") {
		t.Fatalf("CSV content unexpected: %.80s", data)
	}
}

func TestOverrides(t *testing.T) {
	if err := run([]string{"-exp", "storage", "-levels", "20", "-seed", "9", "-warmup", "10", "-measure", "10"}); err != nil {
		t.Fatal(err)
	}
}
