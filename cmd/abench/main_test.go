package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "nonsense"}, io.Discard); err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("err = %v", err)
	}
}

func TestMissingExp(t *testing.T) {
	if err := run(nil, io.Discard); err == nil {
		t.Fatal("expected usage error")
	}
}

func TestUnknownPreset(t *testing.T) {
	if err := run([]string{"-exp", "table1", "-preset", "bogus"}, io.Discard); err == nil {
		t.Fatal("expected preset error")
	}
}

func TestListAndStaticExperiment(t *testing.T) {
	if err := run([]string{"-list"}, io.Discard); err != nil {
		t.Fatal(err)
	}
	// table1 and storage are closed-form: cheap smoke coverage of the full
	// command path including CSV output.
	dir := t.TempDir()
	if err := run([]string{"-exp", "table1", "-csv", dir}, io.Discard); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "table1_*.csv"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no CSV written: %v %v", files, err)
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "field,category") {
		t.Fatalf("CSV content unexpected: %.80s", data)
	}
}

func TestOverrides(t *testing.T) {
	if err := run([]string{"-exp", "storage", "-levels", "20", "-seed", "9", "-warmup", "10", "-measure", "10"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

// decodeRun parses the -json document written to path.
func decodeRun(t *testing.T, path string) map[string]any {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("bad JSON document: %v", err)
	}
	return doc
}

// TestSeedZeroHonored is the regression test for the old `if *seed != 0`
// guard, which silently ignored an explicit -seed 0.
func TestSeedZeroHonored(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.json")
	if err := run([]string{"-exp", "table3", "-seed", "0", "-json", path}, io.Discard); err != nil {
		t.Fatal(err)
	}
	doc := decodeRun(t, path)
	if got := doc["seed"].(float64); got != 0 {
		t.Fatalf("seed = %v, want explicit 0", got)
	}
	// And without the flag, the preset default (1) must survive.
	if err := run([]string{"-exp", "table3", "-json", path}, io.Discard); err != nil {
		t.Fatal(err)
	}
	doc = decodeRun(t, path)
	if got := doc["seed"].(float64); got != 1 {
		t.Fatalf("seed = %v, want preset default 1", got)
	}
}

func TestJSONOutput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.json")
	if err := run([]string{"-exp", "table1", "-json", path}, io.Discard); err != nil {
		t.Fatal(err)
	}
	doc := decodeRun(t, path)
	exps := doc["experiments"].([]any)
	if len(exps) != 1 {
		t.Fatalf("experiments = %d, want 1", len(exps))
	}
	exp := exps[0].(map[string]any)
	if exp["id"] != "table1" {
		t.Fatalf("id = %v", exp["id"])
	}
	tables := exp["tables"].([]any)
	if len(tables) == 0 {
		t.Fatal("no tables in JSON output")
	}
	tab := tables[0].(map[string]any)
	for _, key := range []string{"title", "columns", "rows"} {
		if _, ok := tab[key]; !ok {
			t.Errorf("table missing %q", key)
		}
	}
	if _, ok := doc["cache"]; !ok {
		t.Error("document missing cache counters")
	}
	// -json - writes the document to stdout and suppresses text tables.
	var buf bytes.Buffer
	if err := run([]string{"-exp", "table1", "-json", "-"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("stdout is not pure JSON: %.120s", buf.String())
	}
}

// stripTimings drops the `=== id (X.Ys) ===` headers, whose wall times
// legitimately vary run to run; everything else must be byte-identical.
func stripTimings(s string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(line, "=== ") {
			continue
		}
		out = append(out, line)
	}
	return strings.Join(out, "\n")
}

// TestExpAllParallelByteIdentical runs every experiment at a reduced
// scale, sequentially and with a wide worker pool, and requires the
// rendered tables to be byte-identical — the acceptance criterion for the
// orchestrator.
func TestExpAllParallelByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full experiment registry twice")
	}
	render := func(parallel string) string {
		var buf bytes.Buffer
		args := []string{"-exp", "all", "-levels", "10", "-warmup", "150", "-measure", "400", "-parallel", parallel}
		if err := run(args, &buf); err != nil {
			t.Fatalf("parallel=%s: %v", parallel, err)
		}
		return stripTimings(buf.String())
	}
	seq := render("1")
	par := render("8")
	if seq != par {
		t.Fatal("-exp all output differs between -parallel 1 and -parallel 8")
	}
	if !strings.Contains(seq, "Fig 8a") || !strings.Contains(seq, "Correctness audit") {
		t.Fatalf("output missing expected tables: %.200s", seq)
	}
}
