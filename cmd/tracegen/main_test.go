package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/trace"
)

func TestList(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"mcf", "canneal", "MPKI"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("list output missing %q", want)
		}
	}
}

func TestMissingBench(t *testing.T) {
	if err := run(nil, &strings.Builder{}); err == nil {
		t.Fatal("expected error")
	}
}

func TestUnknownBench(t *testing.T) {
	if err := run([]string{"-bench", "nope"}, &strings.Builder{}); err == nil {
		t.Fatal("expected error")
	}
}

func TestGenerateToFileRoundTrips(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.trace")
	if err := run([]string{"-bench", "gcc", "-n", "500", "-seed", "3", "-o", path}, &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	reqs, err := trace.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 500 {
		t.Fatalf("trace has %d requests, want 500", len(reqs))
	}
	// Deterministic: regenerating with the same seed matches.
	b, _ := trace.Find("gcc")
	gen, _ := trace.NewGenerator(b, 3)
	for i, want := range gen.Generate(500) {
		if reqs[i] != want {
			t.Fatalf("request %d mismatch", i)
		}
	}
}
