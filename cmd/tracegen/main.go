// Command tracegen writes a synthetic memory trace for a benchmark in the
// USIMM-style text format consumed by aboram-sim -trace.
//
// Usage:
//
//	tracegen -bench mcf -n 1000000 -seed 7 > mcf.trace
//	tracegen -list
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	bench := fs.String("bench", "", "benchmark name")
	n := fs.Int("n", 100000, "number of requests")
	seed := fs.Uint64("seed", 1, "random seed")
	outPath := fs.String("o", "", "output file (default stdout)")
	list := fs.Bool("list", false, "list available benchmarks")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		w := bufio.NewWriter(out)
		defer w.Flush()
		for _, b := range append(trace.SPEC17(), trace.PARSEC()...) {
			fmt.Fprintf(w, "%-14s %-7s read %.2f MPKI, write %.2f MPKI\n", b.Name, b.Suite, b.ReadMPKI, b.WriteMPKI)
		}
		return nil
	}
	if *bench == "" {
		fs.Usage()
		return fmt.Errorf("missing -bench (or -list)")
	}
	b, err := trace.Find(*bench)
	if err != nil {
		return err
	}
	gen, err := trace.NewGenerator(b, *seed)
	if err != nil {
		return err
	}

	dst := out
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		dst = f
	}
	w := trace.NewWriter(dst)
	if err := w.Comment(fmt.Sprintf("benchmark: %s seed: %d n: %d", b.Name, *seed, *n)); err != nil {
		return err
	}
	for i := 0; i < *n; i++ {
		if err := w.Write(gen.Next()); err != nil {
			return err
		}
	}
	return w.Flush()
}
