// Command abload is a closed-loop load generator for aboramd. It opens N
// worker connections, each issuing back-to-back requests (the next request
// waits for the previous response), and reports aggregate throughput plus
// p50/p95/p99 client-observed latency as a report table.
//
// Usage:
//
//	abload -addr 127.0.0.1:7314 -workers 32 -ops 2000
//	abload -dist uniform -readfrac 0.9          # read-heavy uniform workload
//	abload -dist zipf -zipf 1.2                 # skewed popularity
//	abload -faults 0.02 -retries 5              # chaos mode: injected resets + retrying clients
//	abload -addr standby:7314 -promote          # admin: promote a warm standby to primary
//
// Block choice is zipfian (default, s>1 over the store's block range) or
// uniform; the read fraction splits the remaining ops between Read and
// Write. All randomness is seeded, so two runs against servers in the same
// state issue identical request streams.
//
// -faults injects client-side connection faults (resets and latency
// spikes, internal/faults) at the given per-io-op rate; pair it with
// -retries so workers redial and resend under their original request ids,
// exercising the server's dedup window. The report then includes retry,
// redial, and error-rate columns.
//
// -breaker arms each worker's circuit breaker (open after N consecutive
// failed ops, half-open probe after -breaker-cooldown). Overloaded
// responses from the server — admission-control shedding — are counted
// separately from hard errors, and the report gains overloaded, shed
// fast-fail, and breaker-open columns when any occur.
package main

import (
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faults"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/server"
	"repro/internal/server/wire"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "abload:", err)
		os.Exit(1)
	}
}

// workerResult is one worker's tally, merged after the run.
type workerResult struct {
	ops        int
	errors     int   // hard errors (op failed for a non-overload reason)
	overloaded int   // ops refused by server shedding or an open breaker
	shardOps   []int // ops per server shard (block mod shards), len = info.Shards
	lat        *stats.LatencyRecorder
	phaseLat   [3]*stats.LatencyRecorder // before / during / after a -reshard migration
	client     server.ClientStats
	err        error // fatal worker error (dial/protocol), nil if it ran to completion
}

// workerConfig is the per-worker slice of the command line.
type workerConfig struct {
	addr            string
	timeout         time.Duration
	readFrac        float64
	dist            string
	zipfS           float64
	faults          float64
	retries         int
	breaker         int
	breakerCooldown time.Duration
	xorKey          []byte        // non-nil switches reads to OpXRead + client-side peeling
	phase           *atomic.Int32 // -reshard phase clock (0 before, 1 during, 2 after); nil = off
}

// devKey is aboramd's well-known demo encryption key (16 bytes of hex).
const devKey = "30313233343536373839616263646566"

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("abload", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7314", "aboramd address")
	workers := fs.Int("workers", 16, "concurrent closed-loop workers (one connection each)")
	ops := fs.Int("ops", 1000, "total operations across all workers")
	readFrac := fs.Float64("readfrac", 0.5, "fraction of ops that are reads (rest are writes)")
	dist := fs.String("dist", "zipf", "block popularity: zipf | uniform")
	zipfS := fs.Float64("zipf", 1.1, "zipf skew parameter (must be > 1)")
	seed := fs.Uint64("seed", 1, "workload seed")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request client deadline")
	faultRate := fs.Float64("faults", 0, "client-side fault rate per io op: connection resets + latency spikes (0 = off)")
	retries := fs.Int("retries", 0, "extra attempts per op after a connection failure (redial + resend)")
	breaker := fs.Int("breaker", 0, "open the per-worker circuit breaker after this many consecutive failed ops (0 = off)")
	breakerCooldown := fs.Duration("breaker-cooldown", 500*time.Millisecond, "with -breaker: how long an open breaker fails fast before a half-open probe")
	xor := fs.Bool("xor", false, "reads use the OpXRead online fast path; pads are peeled client-side with -key")
	keyHex := fs.String("key", devKey, "with -xor: 16-byte AES data key, hex (must match the server's -key)")
	reshardTo := fs.Int("reshard", 0, "trigger a live server migration to this many shards mid-run and report before/during/after latency (0 = off)")
	reshardDelay := fs.Duration("reshard-delay", 200*time.Millisecond, "with -reshard: how long into the run to send the start command")
	promote := fs.Bool("promote", false, "send OpPromote to -addr (promote a standby to primary) and exit without running load")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workers < 1 {
		return fmt.Errorf("-workers must be >= 1")
	}
	if *ops < 1 {
		return fmt.Errorf("-ops must be >= 1")
	}
	if *readFrac < 0 || *readFrac > 1 {
		return fmt.Errorf("-readfrac must be in [0,1]")
	}
	if *dist != "zipf" && *dist != "uniform" {
		return fmt.Errorf("-dist must be zipf or uniform")
	}
	if *dist == "zipf" && *zipfS <= 1 {
		return fmt.Errorf("-zipf must be > 1")
	}
	if *faultRate < 0 || *faultRate >= 1 {
		return fmt.Errorf("-faults must be in [0,1)")
	}
	if *retries < 0 {
		return fmt.Errorf("-retries must be >= 0")
	}
	if *breaker < 0 {
		return fmt.Errorf("-breaker must be >= 0")
	}
	if *breakerCooldown <= 0 {
		return fmt.Errorf("-breaker-cooldown must be > 0")
	}
	if *reshardTo < 0 || *reshardTo > 1<<16-1 {
		return fmt.Errorf("-reshard must be in [0, %d]", 1<<16-1)
	}
	var xorKey []byte
	if *xor {
		k, err := hex.DecodeString(*keyHex)
		if err != nil {
			return fmt.Errorf("bad -key: %w", err)
		}
		if len(k) != 16 {
			return fmt.Errorf("-key must be 16 bytes, got %d", len(k))
		}
		xorKey = k
	}

	// -promote is an admin verb, not a workload: promote and report.
	if *promote {
		c, err := server.Dial(*addr, *timeout)
		if err != nil {
			return fmt.Errorf("dial %s: %w", *addr, err)
		}
		defer c.Close()
		pi, err := c.Promote()
		if err != nil {
			return fmt.Errorf("promote: %w", err)
		}
		_, err = fmt.Fprintf(out, "promoted %s: term %d, %d shards\n", *addr, pi.Term, pi.Shards)
		return err
	}

	// One probe connection learns the store geometry before the fleet dials.
	probe, err := server.Dial(*addr, *timeout)
	if err != nil {
		return fmt.Errorf("dial %s: %w", *addr, err)
	}
	info, err := probe.Info()
	probe.Close()
	if err != nil {
		return fmt.Errorf("info: %w", err)
	}
	if info.NumBlocks < 1 {
		return fmt.Errorf("server reports %d blocks", info.NumBlocks)
	}

	// With -reshard, an admin goroutine triggers the migration mid-run and
	// advances a phase clock the workers stamp each op with, so the report
	// can split latency into before / during / after the migration.
	var phase *atomic.Int32
	var rsh *reshardObs
	runDone := make(chan struct{})
	if *reshardTo > 0 {
		phase = new(atomic.Int32)
		rsh = &reshardObs{}
		go triggerReshard(*addr, *timeout, *reshardTo, *reshardDelay, phase, rsh, runDone)
	}

	root := rng.New(*seed)
	results := make([]workerResult, *workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *workers; w++ {
		// Split ops evenly, remainder to the first workers.
		n := *ops / *workers
		if w < *ops%*workers {
			n++
		}
		src := root.Fork()
		wg.Add(1)
		go func(w, n int, src *rng.Source) {
			defer wg.Done()
			cfg := workerConfig{
				addr: *addr, timeout: *timeout, readFrac: *readFrac,
				dist: *dist, zipfS: *zipfS, faults: *faultRate, retries: *retries,
				breaker: *breaker, breakerCooldown: *breakerCooldown,
				xorKey: xorKey, phase: phase,
			}
			results[w] = worker(cfg, n, info, src)
		}(w, n, src)
	}
	wg.Wait()
	close(runDone)
	elapsed := time.Since(start)

	// Re-probe after the run: the durability and replication counters in
	// the Info tail are cumulative, so the end-of-run values reflect this
	// workload (e.g. how far a standby's ack watermark trailed it).
	if info.Durability != nil || info.Replication != nil {
		if probe, err := server.Dial(*addr, *timeout); err == nil {
			if end, err := probe.Info(); err == nil {
				if end.Durability != nil {
					info.Durability = end.Durability
				}
				if end.Replication != nil {
					info.Replication = end.Replication
				}
			}
			probe.Close()
		}
	}

	lat := new(stats.LatencyRecorder)
	var phaseLat [3]*stats.LatencyRecorder
	for i := range phaseLat {
		phaseLat[i] = new(stats.LatencyRecorder)
	}
	total, errCount, overCount := 0, 0, 0
	shardOps := make([]int, info.Shards)
	var cstats server.ClientStats
	for w, r := range results {
		if r.err != nil {
			return fmt.Errorf("worker %d: %w", w, r.err)
		}
		for i, pl := range r.phaseLat {
			if pl != nil {
				phaseLat[i].Merge(pl)
			}
		}
		total += r.ops
		errCount += r.errors
		overCount += r.overloaded
		for i, n := range r.shardOps {
			shardOps[i] += n
		}
		cstats.Retries += r.client.Retries
		cstats.Redials += r.client.Redials
		cstats.Broken += r.client.Broken
		cstats.Overloaded += r.client.Overloaded
		cstats.BreakerOpens += r.client.BreakerOpens
		cstats.BreakerFastFails += r.client.BreakerFastFails
		cstats.ReadOps += r.client.ReadOps
		cstats.ReadBytes += r.client.ReadBytes
		lat.Merge(r.lat)
	}
	sum := lat.Summary()

	t := report.New("abload: closed-loop load test", "metric", "value")
	t.AddRow("server", *addr)
	t.AddRow("blocks x block size", fmt.Sprintf("%d x %d B", info.NumBlocks, info.BlockSize))
	t.AddRow("workers", report.Int(int64(*workers)))
	t.AddRow("distribution", distLabel(*dist, *zipfS))
	t.AddRow("read fraction", report.Float(*readFrac, 2))
	t.AddRow("operations completed", report.Int(int64(total)))
	if info.Shards > 1 {
		t.AddRow("server shards", report.Int(int64(info.Shards)))
		minOps, maxOps := shardOps[0], shardOps[0]
		for i, n := range shardOps {
			t.AddRow(fmt.Sprintf("shard %d ops (blocks ≡ %d mod %d)", i, i, info.Shards), report.Int(int64(n)))
			if n < minOps {
				minOps = n
			}
			if n > maxOps {
				maxOps = n
			}
		}
		if mean := float64(total) / float64(info.Shards); mean > 0 {
			t.AddRow("shard balance (max/mean)", report.Float(float64(maxOps)/mean, 2))
			t.AddRow("shard balance (min/mean)", report.Float(float64(minOps)/mean, 2))
		}
		t.AddNote("shard of an op is block mod shards: per-shard traffic reveals exactly the low log2(shards) address bits")
	}
	if *xor {
		t.AddRow("read path", "xread (XOR online fast path)")
	}
	if cstats.ReadOps > 0 {
		t.AddRow("read payload B/op", report.Float(float64(cstats.ReadBytes)/float64(cstats.ReadOps), 1))
	}
	t.AddRow("operation errors", report.Int(int64(errCount)))
	t.AddRow("error rate", report.Float(float64(errCount)/float64(total), 4))
	if overCount > 0 {
		t.AddNote("shed ops were refused before execution (server overload or open breaker); they are not hard errors")
	}
	if *faultRate > 0 || *retries > 0 {
		t.AddRow("injected fault rate", report.Float(*faultRate, 3))
		t.AddRow("request retries", report.Int(int64(cstats.Retries)))
		t.AddRow("reconnects", report.Int(int64(cstats.Redials)))
	}
	if overCount > 0 || cstats.Overloaded > 0 || *breaker > 0 {
		t.AddRow("overloaded (shed) ops", report.Int(int64(overCount)))
		t.AddRow("overloaded responses", report.Int(int64(cstats.Overloaded)))
	}
	if *breaker > 0 {
		t.AddRow("breaker opens", report.Int(int64(cstats.BreakerOpens)))
		t.AddRow("breaker fast-fails", report.Int(int64(cstats.BreakerFastFails)))
	}
	if d := info.Durability; d != nil {
		t.AddRow("server checkpoints (full + delta)", fmt.Sprintf("%d + %d (epoch %d)", d.Snapshots, d.Deltas, d.Epoch))
		t.AddRow("server WAL fsyncs", report.Int(int64(d.Syncs)))
		t.AddRow("server WAL compactions", report.Int(int64(d.Compactions)))
		t.AddRow("server checkpoint pause (cumulative)", time.Duration(d.SnapshotPauseNanos).Round(time.Microsecond).String())
		t.AddRow("server last checkpoint bytes", report.Int(int64(d.LastSnapshotBytes)))
		t.AddNote("durability rows are server-lifetime counters (summed across shards), not per-run deltas")
	}
	if r := info.Replication; r != nil {
		role := "unknown"
		switch r.Role {
		case wire.RolePrimary:
			role = "primary"
		case wire.RoleReplica:
			role = "replica"
		}
		t.AddRow("replication role", fmt.Sprintf("%s (term %d, attached=%v)", role, r.Term, r.Attached))
		if r.Role == wire.RolePrimary {
			t.AddRow("replication shipped / acked seq", fmt.Sprintf("%d / %d", r.ShippedSeq, r.AckedSeq))
			t.AddRow("replication lag", fmt.Sprintf("%d records, %d B", r.ShippedSeq-r.AckedSeq, r.LagBytes))
			if !r.Attached {
				t.AddNote("no standby attached: semi-sync writes degrade to local-only acks")
			}
		} else {
			t.AddRow("replication applied seq", report.Int(int64(r.AckedSeq)))
		}
	}
	t.AddRow("wall time", elapsed.Round(time.Millisecond).String())
	t.AddRow("throughput (ops/s)", report.Float(float64(total)/elapsed.Seconds(), 1))
	t.AddRow("latency p50", sum.P50.String())
	t.AddRow("latency p95", sum.P95.String())
	t.AddRow("latency p99", sum.P99.String())
	t.AddRow("latency mean", sum.Mean.String())
	t.AddRow("latency max", sum.Max.String())
	if rsh != nil {
		rsh.report(t, phaseLat)
	}
	t.AddNote("closed loop: each worker issues its next request only after the previous response")
	if *faultRate > 0 {
		t.AddNote("latency includes injected faults, redial backoff, and retried attempts")
	}
	if !info.Encrypted {
		t.AddNote("server is pattern-only (no key): reads/writes degrade to errors, use -readfrac with care")
	}
	return t.WriteText(out)
}

func distLabel(dist string, s float64) string {
	if dist == "zipf" {
		return fmt.Sprintf("zipf (s=%.2f)", s)
	}
	return "uniform"
}

// reshardObs records what the -reshard admin goroutine saw.
type reshardObs struct {
	mu       sync.Mutex
	target   int
	started  time.Time
	finished time.Time
	last     wire.ReshardInfo // latest status observed
	err      error
}

// triggerReshard sends the start command after delay, then polls status
// until the migration reaches a terminal phase (or the run ends),
// advancing the workers' phase clock at the start and end transitions.
func triggerReshard(addr string, timeout time.Duration, to int, delay time.Duration, phase *atomic.Int32, obs *reshardObs, runDone <-chan struct{}) {
	obs.mu.Lock()
	obs.target = to
	obs.mu.Unlock()
	select {
	case <-time.After(delay):
	case <-runDone:
		return
	}
	fail := func(err error) {
		obs.mu.Lock()
		obs.err = err
		obs.mu.Unlock()
	}
	c, err := server.Dial(addr, timeout)
	if err != nil {
		fail(err)
		return
	}
	defer c.Close()
	info, err := c.Reshard(wire.ReshardCmdStart, to)
	if err != nil {
		fail(err)
		return
	}
	obs.mu.Lock()
	obs.started = time.Now()
	obs.last = info
	obs.mu.Unlock()
	phase.Store(1)
	tick := time.NewTicker(20 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-runDone:
			return
		case <-tick.C:
		}
		info, err := c.Reshard(wire.ReshardCmdStatus, 0)
		if err != nil {
			fail(err)
			return
		}
		obs.mu.Lock()
		obs.last = info
		obs.mu.Unlock()
		switch info.Phase {
		case wire.ReshardPhaseDone, wire.ReshardPhaseAborted, wire.ReshardPhaseFailed:
			obs.mu.Lock()
			obs.finished = time.Now()
			obs.mu.Unlock()
			phase.Store(2)
			return
		}
	}
}

// report appends the migration outcome and the phase-split latency to
// the run table.
func (o *reshardObs) report(t *report.Table, phaseLat [3]*stats.LatencyRecorder) {
	o.mu.Lock()
	defer o.mu.Unlock()
	t.AddRow("reshard target shards", report.Int(int64(o.target)))
	if o.err != nil {
		t.AddRow("reshard error", o.err.Error())
	}
	if o.started.IsZero() {
		t.AddNote("the reshard never started within the run; phase-split latency omitted")
		return
	}
	if !o.finished.IsZero() {
		dur := o.finished.Sub(o.started)
		t.AddRow("reshard outcome", o.last.Phase.String())
		t.AddRow("reshard migration time", dur.Round(time.Millisecond).String())
		if o.last.Total > 0 && dur > 0 {
			t.AddRow("migration throughput (blocks/s)", report.Float(float64(o.last.Total)/dur.Seconds(), 1))
		}
	} else {
		t.AddRow("reshard status at run end", fmt.Sprintf("%s, watermark %d/%d", o.last.Phase, o.last.Watermark, o.last.Total))
		t.AddNote("the migration outlived the run; the 'after' phase is empty")
	}
	for i, label := range [3]string{"before reshard", "during reshard", "after reshard"} {
		pl := phaseLat[i]
		if pl.Count() == 0 {
			continue
		}
		s := pl.Summary()
		t.AddRow(fmt.Sprintf("ops (%s)", label), report.Int(int64(s.Count)))
		t.AddRow(fmt.Sprintf("latency p50 (%s)", label), s.P50.String())
		t.AddRow(fmt.Sprintf("latency p99 (%s)", label), s.P99.String())
	}
}

// worker runs one closed-loop connection to completion. Per-op server
// errors (e.g. admission-control rejections) are counted, not fatal;
// connection-level failures that survive the retry budget abort the
// worker only when no faults were asked for — under -faults they are the
// point of the exercise and are counted instead.
func worker(cfg workerConfig, n int, info wire.InfoPayload, src *rng.Source) workerResult {
	res := workerResult{lat: new(stats.LatencyRecorder), shardOps: make([]int, info.Shards)}
	if cfg.phase != nil {
		for i := range res.phaseLat {
			res.phaseLat[i] = new(stats.LatencyRecorder)
		}
	}
	ccfg := server.ClientConfig{
		Timeout:          cfg.timeout,
		MaxAttempts:      1 + cfg.retries,
		Seed:             src.Uint64(),
		BreakerThreshold: cfg.breaker,
		BreakerCooldown:  cfg.breakerCooldown,
		XORKey:           cfg.xorKey,
	}
	if cfg.faults > 0 {
		in := faults.New(faults.Config{
			Seed:        src.Uint64(),
			ResetRate:   cfg.faults,
			LatencyRate: cfg.faults,
			MaxLatency:  5 * time.Millisecond,
		})
		ccfg.Dialer = func() (net.Conn, error) {
			conn, err := net.DialTimeout("tcp", cfg.addr, cfg.timeout)
			if err != nil {
				return nil, err
			}
			return faults.WrapConn(conn, in), nil
		}
	}
	c, err := server.DialConfig(cfg.addr, ccfg)
	if err != nil {
		res.err = err
		return res
	}
	defer c.Close()

	var nextBlock func() int64
	if cfg.dist == "zipf" {
		z := trace.NewZipf(src, cfg.zipfS, uint64(info.NumBlocks))
		nextBlock = func() int64 { return int64(z.Next()) }
	} else {
		nextBlock = func() int64 { return int64(src.Uint64n(uint64(info.NumBlocks))) }
	}
	buf := make([]byte, info.BlockSize)

	for i := 0; i < n; i++ {
		blk := nextBlock()
		if shard, _ := server.RouteBlock(blk, info.Shards); shard < len(res.shardOps) {
			res.shardOps[shard]++
		}
		read := src.Float64() < cfg.readFrac
		begin := time.Now()
		if read {
			_, err = c.Read(blk)
		} else {
			for j := range buf {
				buf[j] = byte(src.Uint64())
			}
			err = c.Write(blk, buf)
		}
		took := time.Since(begin)
		res.lat.Record(took)
		if cfg.phase != nil {
			res.phaseLat[cfg.phase.Load()].Record(took)
		}
		res.ops++
		switch {
		case err == nil:
		case errors.Is(err, server.ErrOverloaded) || errors.Is(err, server.ErrBreakerOpen):
			// Refused before execution — graceful degradation, not a fault.
			res.overloaded++
		default:
			res.errors++
		}
	}
	res.client = c.Stats()
	return res
}
