package main

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"regexp"
	"testing"
	"time"

	"repro/aboram"
	"repro/internal/server"
)

// startStack brings up the full serving stack — encrypted ORAM, scheduler
// with the given batch width, TCP front end — on a loopback port.
func startStack(t *testing.T, batch int) (addr string, stop func()) {
	t.Helper()
	o, err := aboram.New(aboram.Options{
		Levels:        8,
		Seed:          1,
		EncryptionKey: []byte("0123456789abcdef"),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(o, server.Config{Queue: 256, Batch: batch})
	tsrv := server.NewTCP(srv, server.TCPConfig{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- tsrv.Serve(ln) }()
	stop = func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		tsrv.Shutdown(ctx)
		<-served
		srv.Close()
	}
	return ln.Addr().String(), stop
}

// reportShape checks that the load-test table carries the headline
// metrics: throughput and the three latency quantiles, with zero errors.
func reportShape(t *testing.T, out string) {
	t.Helper()
	for _, pat := range []string{
		`## abload: closed-loop load test`,
		`throughput \(ops/s\)\s+\d`,
		`latency p50\s+\d`,
		`latency p95\s+\d`,
		`latency p99\s+\d`,
		`operation errors\s+0\b`,
	} {
		if !regexp.MustCompile(pat).MatchString(out) {
			t.Errorf("report missing /%s/:\n%s", pat, out)
		}
	}
}

// TestLoadBatchingOnAndOff is the acceptance scenario: the generator runs
// against the serving stack with coalescing disabled (batch=1) and enabled
// (batch=16), and both runs must produce a full report table.
func TestLoadBatchingOnAndOff(t *testing.T) {
	for _, batch := range []int{1, 16} {
		addr, stop := startStack(t, batch)
		var buf bytes.Buffer
		err := run([]string{
			"-addr", addr,
			"-workers", "8",
			"-ops", "160",
			"-seed", "3",
		}, &buf)
		stop()
		if err != nil {
			t.Fatalf("batch=%d: %v", batch, err)
		}
		reportShape(t, buf.String())
	}
}

// TestLoadUniformReadHeavy covers the uniform distribution and a skewed
// read fraction.
func TestLoadUniformReadHeavy(t *testing.T) {
	addr, stop := startStack(t, 4)
	defer stop()
	var buf bytes.Buffer
	err := run([]string{
		"-addr", addr,
		"-workers", "4",
		"-ops", "80",
		"-dist", "uniform",
		"-readfrac", "0.9",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	reportShape(t, buf.String())
	if !regexp.MustCompile(`distribution\s+uniform`).MatchString(buf.String()) {
		t.Errorf("report should label the uniform distribution:\n%s", buf.String())
	}
}

// TestLoadWithFaults runs the generator in chaos mode: injected resets
// and latency spikes with a retry budget. The run must complete, report
// the retry columns, and — since writes are deduped server-side and
// retried client-side — finish without fatal worker errors.
func TestLoadWithFaults(t *testing.T) {
	addr, stop := startStack(t, 8)
	defer stop()
	var buf bytes.Buffer
	err := run([]string{
		"-addr", addr,
		"-workers", "4",
		"-ops", "120",
		"-seed", "5",
		"-faults", "0.03",
		"-retries", "6",
	}, &buf)
	if err != nil {
		t.Fatalf("chaos run failed: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, pat := range []string{
		`injected fault rate\s+0\.030`,
		`request retries\s+\d`,
		`reconnects\s+\d`,
		`error rate\s+\d`,
	} {
		if !regexp.MustCompile(pat).MatchString(out) {
			t.Errorf("chaos report missing /%s/:\n%s", pat, out)
		}
	}
}

// TestLoadFlagValidation rejects nonsense configurations before dialing.
func TestLoadFlagValidation(t *testing.T) {
	for _, tc := range [][]string{
		{"-workers", "0"},
		{"-ops", "0"},
		{"-readfrac", "1.5"},
		{"-dist", "pareto"},
		{"-dist", "zipf", "-zipf", "0.9"},
		{"-faults", "1.5"},
		{"-retries", "-1"},
		{"-breaker", "-1"},
		{"-breaker-cooldown", "0s"},
	} {
		var buf bytes.Buffer
		if err := run(tc, &buf); err == nil {
			t.Errorf("run(%v) succeeded, want error", tc)
		}
	}
}

// TestLoadNoServer fails cleanly when nothing is listening.
func TestLoadNoServer(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-addr", "127.0.0.1:1", "-timeout", "500ms"}, &buf); err == nil {
		t.Fatal("expected a dial error")
	}
}

// TestLoadBreakerColumns arms the circuit breaker against a healthy
// server: the run must succeed, the overload/breaker columns must appear,
// and against a healthy server they must all read zero.
func TestLoadBreakerColumns(t *testing.T) {
	addr, stop := startStack(t, 8)
	defer stop()
	var buf bytes.Buffer
	err := run([]string{
		"-addr", addr,
		"-workers", "3",
		"-ops", "60",
		"-seed", "9",
		"-breaker", "3",
		"-breaker-cooldown", "100ms",
	}, &buf)
	if err != nil {
		t.Fatalf("breaker run failed: %v\n%s", err, buf.String())
	}
	out := buf.String()
	reportShape(t, out)
	for _, pat := range []string{
		`overloaded \(shed\) ops\s+0\b`,
		`overloaded responses\s+0\b`,
		`breaker opens\s+0\b`,
		`breaker fast-fails\s+0\b`,
	} {
		if !regexp.MustCompile(pat).MatchString(out) {
			t.Errorf("breaker report missing /%s/:\n%s", pat, out)
		}
	}
}

// startShardedStack is startStack over a P-shard fleet: P same-geometry
// trees behind a Sharded router and one TCP front end.
func startShardedStack(t *testing.T, shards, batch int) (addr string, stop func()) {
	t.Helper()
	engines := make([]server.Engine, shards)
	for i := range engines {
		o, err := aboram.New(aboram.Options{
			Levels:        8,
			Seed:          server.ShardSeed(1, i),
			EncryptionKey: []byte("0123456789abcdef"),
		})
		if err != nil {
			t.Fatal(err)
		}
		engines[i] = o
	}
	sh, err := server.NewSharded(engines, server.Config{Queue: 256, Batch: batch})
	if err != nil {
		t.Fatal(err)
	}
	tsrv := server.NewTCP(sh, server.TCPConfig{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- tsrv.Serve(ln) }()
	stop = func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		tsrv.Shutdown(ctx)
		<-served
		sh.Close()
	}
	return ln.Addr().String(), stop
}

// TestLoadShardBalance runs the generator against a 4-shard server and
// checks the report gains the per-shard balance rows: one ops row per
// shard summing to the total, plus the max/mean balance figure.
func TestLoadShardBalance(t *testing.T) {
	addr, stop := startShardedStack(t, 4, 8)
	defer stop()
	var buf bytes.Buffer
	err := run([]string{
		"-addr", addr,
		"-workers", "4",
		"-ops", "120",
		"-dist", "uniform",
		"-seed", "11",
	}, &buf)
	if err != nil {
		t.Fatalf("sharded run failed: %v\n%s", err, buf.String())
	}
	out := buf.String()
	reportShape(t, out)
	for _, pat := range []string{
		`server shards\s+4\b`,
		`shard 0 ops \(blocks ≡ 0 mod 4\)\s+\d`,
		`shard 3 ops \(blocks ≡ 3 mod 4\)\s+\d`,
		`shard balance \(max/mean\)\s+\d`,
		`shard balance \(min/mean\)\s+\d`,
	} {
		if !regexp.MustCompile(pat).MatchString(out) {
			t.Errorf("sharded report missing /%s/:\n%s", pat, out)
		}
	}
	// The per-shard rows must partition the completed ops.
	rows := regexp.MustCompile(`shard \d ops \(blocks ≡ \d mod 4\)\s+(\d+)`).FindAllStringSubmatch(out, -1)
	if len(rows) != 4 {
		t.Fatalf("found %d per-shard rows, want 4:\n%s", len(rows), out)
	}
	sum := 0
	for _, m := range rows {
		n := 0
		fmt.Sscanf(m[1], "%d", &n)
		sum += n
	}
	if sum != 120 {
		t.Errorf("per-shard ops sum to %d, want 120:\n%s", sum, out)
	}
}

// TestLoadUnshardedReportOmitsShardRows checks a 1-shard server keeps the
// pre-sharding report shape.
func TestLoadUnshardedReportOmitsShardRows(t *testing.T) {
	addr, stop := startStack(t, 8)
	defer stop()
	var buf bytes.Buffer
	if err := run([]string{"-addr", addr, "-workers", "2", "-ops", "20"}, &buf); err != nil {
		t.Fatal(err)
	}
	if regexp.MustCompile(`server shards|shard \d ops`).MatchString(buf.String()) {
		t.Errorf("unsharded report grew shard rows:\n%s", buf.String())
	}
}
