package main

import (
	"bytes"
	"context"
	"net"
	"regexp"
	"testing"
	"time"

	"repro/aboram"
	"repro/internal/server"
)

// startStack brings up the full serving stack — encrypted ORAM, scheduler
// with the given batch width, TCP front end — on a loopback port.
func startStack(t *testing.T, batch int) (addr string, stop func()) {
	t.Helper()
	o, err := aboram.New(aboram.Options{
		Levels:        8,
		Seed:          1,
		EncryptionKey: []byte("0123456789abcdef"),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(o, server.Config{Queue: 256, Batch: batch})
	tsrv := server.NewTCP(srv, server.TCPConfig{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- tsrv.Serve(ln) }()
	stop = func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		tsrv.Shutdown(ctx)
		<-served
		srv.Close()
	}
	return ln.Addr().String(), stop
}

// reportShape checks that the load-test table carries the headline
// metrics: throughput and the three latency quantiles, with zero errors.
func reportShape(t *testing.T, out string) {
	t.Helper()
	for _, pat := range []string{
		`## abload: closed-loop load test`,
		`throughput \(ops/s\)\s+\d`,
		`latency p50\s+\d`,
		`latency p95\s+\d`,
		`latency p99\s+\d`,
		`operation errors\s+0\b`,
	} {
		if !regexp.MustCompile(pat).MatchString(out) {
			t.Errorf("report missing /%s/:\n%s", pat, out)
		}
	}
}

// TestLoadBatchingOnAndOff is the acceptance scenario: the generator runs
// against the serving stack with coalescing disabled (batch=1) and enabled
// (batch=16), and both runs must produce a full report table.
func TestLoadBatchingOnAndOff(t *testing.T) {
	for _, batch := range []int{1, 16} {
		addr, stop := startStack(t, batch)
		var buf bytes.Buffer
		err := run([]string{
			"-addr", addr,
			"-workers", "8",
			"-ops", "160",
			"-seed", "3",
		}, &buf)
		stop()
		if err != nil {
			t.Fatalf("batch=%d: %v", batch, err)
		}
		reportShape(t, buf.String())
	}
}

// TestLoadUniformReadHeavy covers the uniform distribution and a skewed
// read fraction.
func TestLoadUniformReadHeavy(t *testing.T) {
	addr, stop := startStack(t, 4)
	defer stop()
	var buf bytes.Buffer
	err := run([]string{
		"-addr", addr,
		"-workers", "4",
		"-ops", "80",
		"-dist", "uniform",
		"-readfrac", "0.9",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	reportShape(t, buf.String())
	if !regexp.MustCompile(`distribution\s+uniform`).MatchString(buf.String()) {
		t.Errorf("report should label the uniform distribution:\n%s", buf.String())
	}
}

// TestLoadWithFaults runs the generator in chaos mode: injected resets
// and latency spikes with a retry budget. The run must complete, report
// the retry columns, and — since writes are deduped server-side and
// retried client-side — finish without fatal worker errors.
func TestLoadWithFaults(t *testing.T) {
	addr, stop := startStack(t, 8)
	defer stop()
	var buf bytes.Buffer
	err := run([]string{
		"-addr", addr,
		"-workers", "4",
		"-ops", "120",
		"-seed", "5",
		"-faults", "0.03",
		"-retries", "6",
	}, &buf)
	if err != nil {
		t.Fatalf("chaos run failed: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, pat := range []string{
		`injected fault rate\s+0\.030`,
		`request retries\s+\d`,
		`reconnects\s+\d`,
		`error rate\s+\d`,
	} {
		if !regexp.MustCompile(pat).MatchString(out) {
			t.Errorf("chaos report missing /%s/:\n%s", pat, out)
		}
	}
}

// TestLoadFlagValidation rejects nonsense configurations before dialing.
func TestLoadFlagValidation(t *testing.T) {
	for _, tc := range [][]string{
		{"-workers", "0"},
		{"-ops", "0"},
		{"-readfrac", "1.5"},
		{"-dist", "pareto"},
		{"-dist", "zipf", "-zipf", "0.9"},
		{"-faults", "1.5"},
		{"-retries", "-1"},
		{"-breaker", "-1"},
		{"-breaker-cooldown", "0s"},
	} {
		var buf bytes.Buffer
		if err := run(tc, &buf); err == nil {
			t.Errorf("run(%v) succeeded, want error", tc)
		}
	}
}

// TestLoadNoServer fails cleanly when nothing is listening.
func TestLoadNoServer(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-addr", "127.0.0.1:1", "-timeout", "500ms"}, &buf); err == nil {
		t.Fatal("expected a dial error")
	}
}

// TestLoadBreakerColumns arms the circuit breaker against a healthy
// server: the run must succeed, the overload/breaker columns must appear,
// and against a healthy server they must all read zero.
func TestLoadBreakerColumns(t *testing.T) {
	addr, stop := startStack(t, 8)
	defer stop()
	var buf bytes.Buffer
	err := run([]string{
		"-addr", addr,
		"-workers", "3",
		"-ops", "60",
		"-seed", "9",
		"-breaker", "3",
		"-breaker-cooldown", "100ms",
	}, &buf)
	if err != nil {
		t.Fatalf("breaker run failed: %v\n%s", err, buf.String())
	}
	out := buf.String()
	reportShape(t, out)
	for _, pat := range []string{
		`overloaded \(shed\) ops\s+0\b`,
		`overloaded responses\s+0\b`,
		`breaker opens\s+0\b`,
		`breaker fast-fails\s+0\b`,
	} {
		if !regexp.MustCompile(pat).MatchString(out) {
			t.Errorf("breaker report missing /%s/:\n%s", pat, out)
		}
	}
}
