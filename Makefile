# Convenience targets; `make check` is the gate referenced by ROADMAP.md.

.PHONY: check vet build test race bench fuzz

check:
	sh scripts/check.sh

vet:
	go vet ./...

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./internal/sim

bench:
	go test -bench=. -benchmem

# Run each native fuzz target for FUZZTIME (default 30s per target).
FUZZTIME ?= 30s
fuzz:
	go test -run='^$$' -fuzz='^FuzzAccess$$' -fuzztime=$(FUZZTIME) ./internal/ringoram
	go test -run='^$$' -fuzz='^FuzzCheckpointRoundTrip$$' -fuzztime=$(FUZZTIME) ./aboram
	go test -run='^$$' -fuzz='^FuzzTraceParse$$' -fuzztime=$(FUZZTIME) ./internal/trace
