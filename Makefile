# Convenience targets; `make check` is the gate referenced by ROADMAP.md.

.PHONY: check vet build test race bench fuzz crash soak serve loadtest

check:
	sh scripts/check.sh

vet:
	go vet ./...

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./internal/sim ./internal/server/... ./internal/durable ./internal/faults

bench:
	go test -bench=. -benchmem

# Run each native fuzz target for FUZZTIME (default 30s per target).
FUZZTIME ?= 30s
fuzz:
	go test -run='^$$' -fuzz='^FuzzAccess$$' -fuzztime=$(FUZZTIME) ./internal/ringoram
	go test -run='^$$' -fuzz='^FuzzCheckpointRoundTrip$$' -fuzztime=$(FUZZTIME) ./aboram
	go test -run='^$$' -fuzz='^FuzzDeltaDecode$$' -fuzztime=$(FUZZTIME) ./aboram
	go test -run='^$$' -fuzz='^FuzzTraceParse$$' -fuzztime=$(FUZZTIME) ./internal/trace
	go test -run='^$$' -fuzz='^FuzzWireDecode$$' -fuzztime=$(FUZZTIME) ./internal/server/wire
	go test -run='^$$' -fuzz='^FuzzShardRoute$$' -fuzztime=$(FUZZTIME) ./internal/server
	go test -run='^$$' -fuzz='^FuzzReplStream$$' -fuzztime=$(FUZZTIME) ./internal/server/wire
	go test -run='^$$' -fuzz='^FuzzWALReplay$$' -fuzztime=$(FUZZTIME) ./internal/durable
	go test -run='^$$' -fuzz='^FuzzReshardJournal$$' -fuzztime=$(FUZZTIME) ./internal/durable
	go test -run='^$$' -fuzz='^FuzzXORPeel$$' -fuzztime=$(FUZZTIME) ./internal/secmem

# Long kill-recover campaign: the full (non-short) crash-recovery,
# live-reshard, and replication-failover oracles under the race
# detector. `make check` runs the -short variants.
crash:
	go test -race -count=1 -run '^TestCrashRecovery|^TestReshardKillRecover|^TestFailover' -v ./internal/check

# Chaos soak: live daemon under kill -9 schedules, overload bursts, and a
# network blackout, checked for exactly-once and zero acked loss
# (internal/check RunSoak) — run unsharded, against a 2-shard fleet with
# cross-shard apply checks, in reshard mode (live 2→3→2 migrations
# under the same fire), and in replication mode (semi-sync shipping to a
# chaos-partitioned standby, promoted and re-verified at the end).
# SOAKTIME sets the per-incarnation wall budget
# (e.g. SOAKTIME=30s); `make check` runs the -short variant.
SOAKTIME ?= 5s
soak:
	SOAKTIME=$(SOAKTIME) go test -race -count=1 -run '^TestChaosSoak' -v ./internal/check

# Serving layer: start a daemon on the default port, or drive one with the
# closed-loop load generator (see README "Serving").
SERVE_ADDR ?= 127.0.0.1:7314
serve:
	go run ./cmd/aboramd -addr $(SERVE_ADDR)

loadtest:
	go run ./cmd/abload -addr $(SERVE_ADDR) -workers 32 -ops 5000
