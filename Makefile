# Convenience targets; `make check` is the gate referenced by ROADMAP.md.

.PHONY: check vet build test race bench

check:
	sh scripts/check.sh

vet:
	go vet ./...

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./internal/sim

bench:
	go test -bench=. -benchmem
