package main

import (
	"strings"
	"testing"
)

func TestTracereplaySmoke(t *testing.T) {
	var buf strings.Builder
	if err := run(&buf, 8, 8000, "mcf"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "cache front end") {
		t.Errorf("cache stage not reported:\n%s", out)
	}
	if !strings.Contains(out, "Baseline") || !strings.Contains(out, "AB") {
		t.Errorf("scheme rows missing:\n%s", out)
	}
	if !strings.Contains(out, "AB-ORAM vs Baseline") {
		t.Errorf("comparison line missing:\n%s", out)
	}
}
