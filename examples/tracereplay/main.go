// Tracereplay: drive the full evaluation stack — trace generator, cache
// hierarchy, ORAM controller, and DRAM timing model — the way the paper's
// methodology does, and compare AB-ORAM against the Baseline on the same
// request stream.
//
// The example also demonstrates the cache front end: raw loads/stores are
// filtered through the Table III L1/L2/LLC hierarchy, and only LLC misses
// and write-backs reach the ORAM, exactly as with the paper's Pin traces.
//
//	go run ./examples/tracereplay
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/sim"
	"repro/internal/trace"
)

// run replays cpuAccesses of the named benchmark through the cache front
// end and both scheme stacks at the given tree size, writing progress and
// the final comparison to w.
func run(w io.Writer, levels, cpuAccesses int, benchName string) error {
	bench, err := trace.Find(benchName)
	if err != nil {
		return err
	}

	// Stage 1: synthesize a CPU-level access stream and filter it through
	// the cache hierarchy to produce the ORAM-bound miss stream.
	gen, err := trace.NewGenerator(bench, 11)
	if err != nil {
		return err
	}
	hier := cache.DefaultHierarchy()
	var missTrace []trace.Request
	var reqs []cache.MemoryRequest
	for i := 0; i < cpuAccesses; i++ {
		r := gen.Next()
		reqs = hier.Access(r.Addr, r.Write, reqs[:0])
		for _, m := range reqs {
			missTrace = append(missTrace, trace.Request{Gap: r.Gap, Addr: m.Addr, Write: m.Write})
		}
	}
	fmt.Fprintf(w, "cache front end: %d CPU accesses -> %d memory requests (LLC miss rate %.1f%%)\n",
		cpuAccesses, len(missTrace), hier.LLC.MissRate()*100)
	if len(missTrace) == 0 {
		return fmt.Errorf("no LLC misses in %d accesses", cpuAccesses)
	}

	// Stage 2: replay the miss stream through each scheme's full stack.
	warm := len(missTrace) / 3
	type row struct {
		scheme core.Scheme
		cpa    float64
		space  uint64
	}
	var rows []row
	for _, scheme := range []core.Scheme{core.SchemeBaseline, core.SchemeAB} {
		o, _, err := core.New(scheme, core.DefaultOptions(levels, 3))
		if err != nil {
			return err
		}
		s, err := sim.New(o, dram.DDR3_1600(), sim.DefaultCPU())
		if err != nil {
			return err
		}
		for i, r := range missTrace {
			if i == warm {
				s.StartMeasurement()
			}
			if err := s.Step(r); err != nil {
				return err
			}
		}
		res := s.Finish()
		rows = append(rows, row{scheme, res.CyclesPerAccess(), res.SpaceB})
		fmt.Fprintf(w, "%-9s %6.0f cycles/access, %5.1f MiB tree, row-buffer hit %.1f%%, stash peak %d\n",
			scheme, res.CyclesPerAccess(), float64(res.SpaceB)/(1<<20), res.Mem.RowHitRate()*100, res.StashPeak)
	}

	base, ab := rows[0], rows[1]
	fmt.Fprintf(w, "\nAB-ORAM vs Baseline: %.1f%% of the space at %.1f%% of the time\n",
		100*float64(ab.space)/float64(base.space), 100*ab.cpa/base.cpa)
	return nil
}

func main() {
	if err := run(os.Stdout, 12, 200000, "mcf"); err != nil {
		log.Fatal(err)
	}
}
