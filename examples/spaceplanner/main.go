// Spaceplanner: a capacity-planning calculator for deploying the paper's
// schemes at production scale. It answers, closed-form and instantly, the
// question the paper's Fig 8a/8b answers by simulation: how much memory
// does each scheme need for a given protected-data size, and where do the
// bytes go (data tree vs metadata tree vs on-chip structures)?
//
//	go run ./examples/spaceplanner
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/metadata"
	"repro/internal/report"
	"repro/internal/ringoram"
)

// run writes one capacity-plan table per requested tree size to w.
func run(w io.Writer, levelsList []int) error {
	for _, levels := range levelsList {
		opt := core.DefaultOptions(levels, 1)
		t := report.New(fmt.Sprintf("Capacity plan for a %d-level tree", levels),
			"scheme", "user data", "data tree", "metadata tree", "total", "utilization", "vs Baseline")

		var baseTotal uint64
		for _, scheme := range core.Schemes() {
			cfg, _, err := core.Build(scheme, opt)
			if err != nil {
				return err
			}
			dataTree := ringoram.SpaceBytesStatic(cfg)
			user := uint64(cfg.NumBlocks) * uint64(cfg.BlockB)

			// One metadata block per bucket (§VIII-H keeps it within 64 B).
			mp := metadata.Params{
				Z: cfg.ZPrime + cfg.S, ZPrime: cfg.ZPrime, S: cfg.S,
				Levels: cfg.Levels, NBlocks: cfg.NumBlocks, R: cfg.MaxRemote,
			}
			metaTree := uint64(mp.NBuckets()) * uint64(cfg.BlockB)
			total := dataTree + metaTree
			if baseTotal == 0 {
				baseTotal = total
			}
			t.AddRow(string(scheme),
				report.Bytes(user),
				report.Bytes(dataTree),
				report.Bytes(metaTree),
				report.Bytes(total),
				report.Percent(float64(user)/float64(dataTree)),
				report.Norm(float64(total), float64(baseTotal)))
		}

		mp := metadata.Params{Z: 8, ZPrime: 5, S: 3, Levels: levels, NBlocks: 1 << (levels - 1), R: 6}
		t.AddNote("on-chip: DeadQ %s (6 levels x 1000 entries), stash 300 entries, %d-level tree-top cache",
			report.Bytes(uint64(metadata.DeadQOnChipBytes(mp, 6, 1000))), opt.TreetopLevels)
		fmt.Fprint(w, t)
		fmt.Fprintln(w)
	}
	return nil
}

func main() {
	// The paper's deployment point: a 24-level tree protecting ~2.7 GB.
	if err := run(os.Stdout, []int{20, 24}); err != nil {
		log.Fatal(err)
	}
}
