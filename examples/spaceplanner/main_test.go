package main

import (
	"strings"
	"testing"
)

func TestSpaceplannerSmoke(t *testing.T) {
	var buf strings.Builder
	if err := run(&buf, []int{10}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Capacity plan for a 10-level tree") {
		t.Errorf("missing table title:\n%s", out)
	}
	for _, scheme := range []string{"Baseline", "IR", "DR", "NS", "AB"} {
		if !strings.Contains(out, scheme) {
			t.Errorf("scheme %s missing from plan:\n%s", scheme, out)
		}
	}
}

func TestSpaceplannerRejectsTinyTree(t *testing.T) {
	var buf strings.Builder
	if err := run(&buf, []int{4}); err == nil {
		t.Fatal("4-level tree accepted")
	}
}
