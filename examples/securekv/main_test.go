package main

import (
	"strings"
	"testing"
)

func TestSecureKVSmoke(t *testing.T) {
	var buf strings.Builder
	if err := run(&buf, 8); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "ml-kem-768") {
		t.Errorf("overwrite of alice not visible:\n%s", out)
	}
	if !strings.Contains(out, "bob") || !strings.Contains(out, "rsa-4096") {
		t.Errorf("bob lookup failed:\n%s", out)
	}
	if !strings.Contains(out, "mallory") || !strings.Contains(out, "(absent)") {
		t.Errorf("absent key not reported:\n%s", out)
	}
}

func TestKVPutGetDirect(t *testing.T) {
	kv, err := NewKV(8, []byte("0123456789abcdef"))
	if err != nil {
		t.Fatal(err)
	}
	if err := kv.Put("k", "v1"); err != nil {
		t.Fatal(err)
	}
	if err := kv.Put("k", "v2"); err != nil {
		t.Fatal(err)
	}
	v, ok, err := kv.Get("k")
	if err != nil || !ok || v != "v2" {
		t.Fatalf("Get(k) = %q,%v,%v; want v2", v, ok, err)
	}
	if _, ok, err := kv.Get("missing"); err != nil || ok {
		t.Fatalf("missing key found: %v %v", ok, err)
	}
	long := strings.Repeat("x", maxValueLen+1)
	if err := kv.Put("k", long); err == nil {
		t.Fatal("oversized value accepted")
	}
}
