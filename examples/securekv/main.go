// Securekv: an oblivious, encrypted key-value store on the public AB-ORAM
// API. Records live *inside* ORAM blocks: every probe is an oblivious
// Read/Write, contents are AES-encrypted and Merkle-authenticated at rest,
// and the memory access pattern is identical for gets, puts, hits, and
// misses — an observer of the bus learns nothing.
//
//	go run ./examples/securekv
package main

import (
	"fmt"
	"hash/fnv"
	"io"
	"log"
	"os"

	"repro/aboram"
)

// Record layout inside one 64-byte block:
//
//	[0]     used flag
//	[1]     key length  (<= 27)
//	[2]     value length (<= 34)
//	[3:30]  key bytes
//	[30:64] value bytes
const (
	maxKeyLen   = 27
	maxValueLen = 34
	keyOff      = 3
	valueOff    = 30
)

// KV is an oblivious fixed-capacity key-value store.
type KV struct {
	oram *aboram.ORAM
}

// NewKV builds a store; every byte it persists is encrypted and
// authenticated, and every probe is oblivious.
func NewKV(levels int, key []byte) (*KV, error) {
	o, err := aboram.New(aboram.Options{
		Scheme:        aboram.SchemeAB,
		Levels:        levels,
		EncryptionKey: key,
		Seed:          7,
	})
	if err != nil {
		return nil, err
	}
	return &KV{oram: o}, nil
}

// probeLimit bounds open addressing.
const probeLimit = 64

func (kv *KV) slot(key string, probe int) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%d", key, probe)
	return int64(h.Sum64() % uint64(kv.oram.NumBlocks()))
}

func encode(key, value string, buf []byte) {
	for i := range buf {
		buf[i] = 0
	}
	buf[0] = 1
	buf[1] = byte(len(key))
	buf[2] = byte(len(value))
	copy(buf[keyOff:], key)
	copy(buf[valueOff:], value)
}

func decode(buf []byte) (key, value string, used bool) {
	if buf[0] == 0 {
		return "", "", false
	}
	return string(buf[keyOff : keyOff+int(buf[1])]), string(buf[valueOff : valueOff+int(buf[2])]), true
}

// Put inserts or updates a key.
func (kv *KV) Put(key, value string) error {
	if len(key) > maxKeyLen || len(value) > maxValueLen {
		return fmt.Errorf("kv: key/value too long (%d/%d max)", maxKeyLen, maxValueLen)
	}
	for probe := 0; probe < probeLimit; probe++ {
		b := kv.slot(key, probe)
		blk, err := kv.oram.Read(b)
		if err != nil {
			return err
		}
		k, _, used := decode(blk)
		if !used || k == key {
			encode(key, value, blk)
			return kv.oram.Write(b, blk)
		}
	}
	return fmt.Errorf("kv: table full after %d probes", probeLimit)
}

// Get fetches a key; found reports existence. The bus trace is the same
// shape either way.
func (kv *KV) Get(key string) (value string, found bool, err error) {
	for probe := 0; probe < probeLimit; probe++ {
		blk, err := kv.oram.Read(kv.slot(key, probe))
		if err != nil {
			return "", false, err
		}
		k, v, used := decode(blk)
		if !used {
			return "", false, nil
		}
		if k == key {
			return v, true, nil
		}
	}
	return "", false, nil
}

// Stats exposes the underlying ORAM counters.
func (kv *KV) Stats() aboram.Stats { return kv.oram.Stats() }

// run populates the store with the demo records (one overwritten), reads
// them back plus one absent key, and writes the results to w. The tree
// size is a parameter so the smoke test can use the minimum.
func run(w io.Writer, levels int) error {
	kv, err := NewKV(levels, []byte("0123456789abcdef"))
	if err != nil {
		return err
	}

	users := []struct{ name, algo string }{
		{"alice", "curve25519"}, {"bob", "rsa-4096"}, {"carol", "ed25519"},
		{"dave", "p-384"}, {"erin", "x448"},
	}
	for _, u := range users {
		if err := kv.Put(u.name, u.algo); err != nil {
			return err
		}
	}
	if err := kv.Put("alice", "ml-kem-768"); err != nil { // overwrite
		return err
	}

	for _, name := range []string{"alice", "bob", "carol", "dave", "erin", "mallory"} {
		v, ok, err := kv.Get(name)
		if err != nil {
			return err
		}
		if ok {
			fmt.Fprintf(w, "%-8s -> %s\n", name, v)
		} else {
			fmt.Fprintf(w, "%-8s -> (absent)\n", name)
		}
	}

	st := kv.Stats()
	fmt.Fprintf(w, "\noblivious accesses: %d (evictPaths %d, earlyReshuffles %d, extend ratio %.0f%%)\n",
		st.Accesses, st.EvictPaths, st.EarlyReshuffles, st.ExtendRatio*100)
	fmt.Fprintln(w, "every probe above produced an identical-shape, encrypted, authenticated ReadPath")
	return nil
}

func main() {
	if err := run(os.Stdout, 12); err != nil {
		log.Fatal(err)
	}
}
