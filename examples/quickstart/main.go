// Quickstart: build the paper's five ORAM schemes, run the same workload
// through each, and print the headline comparison — space, utilization,
// and operation counts.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/trace"
)

func main() {
	const levels = 12
	const accesses = 10000

	bench, err := trace.Find("x264")
	if err != nil {
		log.Fatal(err)
	}

	t := report.New(fmt.Sprintf("AB-ORAM quickstart: %d-level tree, %d accesses of %s", levels, accesses, bench.Name),
		"scheme", "tree space", "utilization", "evictPaths", "earlyReshuffles", "stash peak")

	var baseline uint64
	for _, scheme := range core.Schemes() {
		o, _, err := core.New(scheme, core.DefaultOptions(levels, 42))
		if err != nil {
			log.Fatal(err)
		}
		gen, err := trace.NewGenerator(bench, 42)
		if err != nil {
			log.Fatal(err)
		}
		n := uint64(o.Config().NumBlocks)
		for i := 0; i < accesses; i++ {
			if _, err := o.Access(int64(gen.Next().Block() % n)); err != nil {
				log.Fatal(err)
			}
		}
		// The protocol is functional: verify full-state consistency.
		if err := o.CheckInvariants(); err != nil {
			log.Fatalf("%s: invariant violation: %v", scheme, err)
		}
		st := o.Stats()
		if baseline == 0 {
			baseline = o.SpaceBytes()
		}
		t.AddRow(string(scheme),
			fmt.Sprintf("%s (%s)", report.Bytes(o.SpaceBytes()), report.Norm(float64(o.SpaceBytes()), float64(baseline))),
			report.Percent(o.Utilization()),
			report.Uint(st.EvictPaths),
			report.Uint(st.EarlyReshuffles),
			report.Int(int64(o.Stash().Peak())))
	}
	t.AddNote("AB should show ~36%% less space than Baseline at ~48.5%% utilization (paper Fig 8)")
	fmt.Print(t)
}
