// Quickstart: build the paper's five ORAM schemes, run the same workload
// through each, and print the headline comparison — space, utilization,
// and operation counts.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/trace"
)

// run drives all five schemes with the named benchmark and writes the
// comparison table to w. Levels and access count are parameters so the
// smoke test can use a tiny tree.
func run(w io.Writer, levels, accesses int, benchName string) error {
	bench, err := trace.Find(benchName)
	if err != nil {
		return err
	}

	t := report.New(fmt.Sprintf("AB-ORAM quickstart: %d-level tree, %d accesses of %s", levels, accesses, bench.Name),
		"scheme", "tree space", "utilization", "evictPaths", "earlyReshuffles", "stash peak")

	var baseline uint64
	for _, scheme := range core.Schemes() {
		o, _, err := core.New(scheme, core.DefaultOptions(levels, 42))
		if err != nil {
			return err
		}
		gen, err := trace.NewGenerator(bench, 42)
		if err != nil {
			return err
		}
		n := uint64(o.Config().NumBlocks)
		for i := 0; i < accesses; i++ {
			if _, err := o.Access(int64(gen.Next().Block() % n)); err != nil {
				return err
			}
		}
		// The protocol is functional: verify full-state consistency.
		if err := o.CheckInvariants(); err != nil {
			return fmt.Errorf("%s: invariant violation: %w", scheme, err)
		}
		st := o.Stats()
		if baseline == 0 {
			baseline = o.SpaceBytes()
		}
		t.AddRow(string(scheme),
			fmt.Sprintf("%s (%s)", report.Bytes(o.SpaceBytes()), report.Norm(float64(o.SpaceBytes()), float64(baseline))),
			report.Percent(o.Utilization()),
			report.Uint(st.EvictPaths),
			report.Uint(st.EarlyReshuffles),
			report.Int(int64(o.Stash().Peak())))
	}
	t.AddNote("AB should show ~36%% less space than Baseline at ~48.5%% utilization (paper Fig 8)")
	_, err = fmt.Fprint(w, t)
	return err
}

func main() {
	if err := run(os.Stdout, 12, 10000, "x264"); err != nil {
		log.Fatal(err)
	}
}
