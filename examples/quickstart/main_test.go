package main

import (
	"strings"
	"testing"
)

func TestQuickstartSmoke(t *testing.T) {
	var buf strings.Builder
	if err := run(&buf, 8, 300, "mcf"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Baseline", "AB", "quickstart"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestQuickstartUnknownBenchmark(t *testing.T) {
	var buf strings.Builder
	if err := run(&buf, 8, 10, "no-such-benchmark"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}
