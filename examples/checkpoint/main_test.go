package main

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestCheckpointSmoke(t *testing.T) {
	var buf strings.Builder
	path := filepath.Join(t.TempDir(), "smoke.ckpt")
	if err := run(&buf, path, 8, 12, 200); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "wrong key rejected") {
		t.Errorf("wrong-key rejection not exercised:\n%s", out)
	}
	if !strings.Contains(out, "12/12 records intact") {
		t.Errorf("resume did not recover every record:\n%s", out)
	}
}
