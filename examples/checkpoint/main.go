// Checkpoint: suspend an encrypted oblivious store to a file and resume
// it — e.g. across process restarts of a secure service. The saved image
// holds ciphertext and protocol metadata only (never the key), a wrong
// key is rejected at load, and the resumed instance continues with
// bit-identical protocol behaviour.
//
//	go run ./examples/checkpoint
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/aboram"
)

func main() {
	key := []byte("0123456789abcdef")
	opt := aboram.Options{Scheme: aboram.SchemeAB, Levels: 12, Seed: 21, EncryptionKey: key}

	// Phase 1: a service populates its protected store...
	o, err := aboram.New(opt)
	if err != nil {
		log.Fatal(err)
	}
	record := func(i int64) []byte {
		d := make([]byte, o.BlockSize())
		copy(d, fmt.Sprintf("session-token-%04d", i))
		return d
	}
	for i := int64(0); i < 50; i++ {
		if err := o.Write(i*37%o.NumBlocks(), record(i)); err != nil {
			log.Fatal(err)
		}
	}
	for i := int64(0); i < 3000; i++ { // ...and serves traffic
		if err := o.Access((i * 2654435761) % o.NumBlocks()); err != nil {
			log.Fatal(err)
		}
	}

	// ...then suspends to disk.
	path := filepath.Join(os.TempDir(), "aboram.ckpt")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := o.Save(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(path)
	fmt.Printf("checkpoint written: %s (%.1f MiB, no key material)\n", path, float64(info.Size())/(1<<20))

	// Phase 2: a new process resumes. The wrong key is refused...
	bad := opt
	bad.EncryptionKey = []byte("xxxxxxxxxxxxxxxx")
	if rf, err := os.Open(path); err == nil {
		if _, err := aboram.Load(bad, rf); err != nil {
			fmt.Println("wrong key rejected:", err)
		} else {
			log.Fatal("wrong key accepted?!")
		}
		rf.Close()
	}

	// ...the right key resumes seamlessly.
	rf, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer rf.Close()
	resumed, err := aboram.Load(opt, rf)
	if err != nil {
		log.Fatal(err)
	}
	ok := 0
	for i := int64(0); i < 50; i++ {
		got, err := resumed.Read(i * 37 % resumed.NumBlocks())
		if err != nil {
			log.Fatal(err)
		}
		if bytes.Equal(got, record(i)) {
			ok++
		}
	}
	if err := resumed.CheckIntegrity(); err != nil {
		log.Fatal(err)
	}
	st := resumed.Stats()
	fmt.Printf("resumed: %d/50 records intact, %d lifetime accesses carried over, integrity OK\n", ok, st.Accesses)
	_ = os.Remove(path)
}
