// Checkpoint: suspend an encrypted oblivious store to a file and resume
// it — e.g. across process restarts of a secure service. The saved image
// holds ciphertext and protocol metadata only (never the key), a wrong
// key is rejected at load, and the resumed instance continues with
// bit-identical protocol behaviour.
//
//	go run ./examples/checkpoint
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	"repro/aboram"
)

// run populates an encrypted store, checkpoints it to path, proves a
// wrong key is refused, resumes with the right key, and verifies every
// record survived. Sizes are parameters so the smoke test stays fast.
func run(w io.Writer, path string, levels int, records, accesses int64) error {
	key := []byte("0123456789abcdef")
	opt := aboram.Options{Scheme: aboram.SchemeAB, Levels: levels, Seed: 21, EncryptionKey: key}

	// Phase 1: a service populates its protected store...
	o, err := aboram.New(opt)
	if err != nil {
		return err
	}
	record := func(i int64) []byte {
		d := make([]byte, o.BlockSize())
		copy(d, fmt.Sprintf("session-token-%04d", i))
		return d
	}
	// i*37 mod NumBlocks hits distinct slots while NumBlocks (a multiple
	// of a power of two coprime to 37) exceeds the record count.
	if records > o.NumBlocks() {
		return fmt.Errorf("%d records exceed %d blocks", records, o.NumBlocks())
	}
	for i := int64(0); i < records; i++ {
		if err := o.Write(i*37%o.NumBlocks(), record(i)); err != nil {
			return err
		}
	}
	for i := int64(0); i < accesses; i++ { // ...and serves traffic
		if err := o.Access((i * 2654435761) % o.NumBlocks()); err != nil {
			return err
		}
	}

	// ...then suspends to disk.
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := o.Save(f); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "checkpoint written: %s (%.1f MiB, no key material)\n", path, float64(info.Size())/(1<<20))

	// Phase 2: a new process resumes. The wrong key is refused...
	bad := opt
	bad.EncryptionKey = []byte("xxxxxxxxxxxxxxxx")
	rf, err := os.Open(path)
	if err != nil {
		return err
	}
	if _, err := aboram.Load(bad, rf); err != nil {
		fmt.Fprintln(w, "wrong key rejected:", err)
	} else {
		rf.Close()
		return fmt.Errorf("wrong key accepted?!")
	}
	rf.Close()

	// ...the right key resumes seamlessly.
	rf, err = os.Open(path)
	if err != nil {
		return err
	}
	defer rf.Close()
	resumed, err := aboram.Load(opt, rf)
	if err != nil {
		return err
	}
	ok := int64(0)
	for i := int64(0); i < records; i++ {
		got, err := resumed.Read(i * 37 % resumed.NumBlocks())
		if err != nil {
			return err
		}
		if bytes.Equal(got, record(i)) {
			ok++
		}
	}
	if ok != records {
		return fmt.Errorf("only %d/%d records intact after resume", ok, records)
	}
	if err := resumed.CheckIntegrity(); err != nil {
		return err
	}
	st := resumed.Stats()
	fmt.Fprintf(w, "resumed: %d/%d records intact, %d lifetime accesses carried over, integrity OK\n",
		ok, records, st.Accesses)
	return nil
}

func main() {
	path := filepath.Join(os.TempDir(), "aboram.ckpt")
	err := run(os.Stdout, path, 12, 50, 3000)
	os.Remove(path)
	if err != nil {
		log.Fatal(err)
	}
}
